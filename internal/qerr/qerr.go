// Package qerr is the typed error taxonomy of the explanation API:
// one set of sentinel errors defined once, shared by the library
// engine, the querycaused server, and the Go client, so callers can
// branch with errors.Is/As identically whether an explanation ran
// in-process or over HTTP.
//
// Each sentinel carries a stable machine-readable code (the wire
// representation in ErrorResponse.Code) and a canonical HTTP status.
// Errors raised deep in the engine are *tagged* with a sentinel via
// Tag, which preserves the original message byte-for-byte while making
// errors.Is(err, sentinel) true; the server serializes CodeOf(err),
// and the client rehydrates the sentinel with FromCode, so
//
//	errors.Is(err, qerr.ErrInvalidWhyNo)
//
// holds for the same failure on both transports.
package qerr

import (
	"errors"
	"net/http"
)

// Sentinel is one node of the taxonomy. Sentinels are compared by
// identity (errors.Is against the package-level variables); the code
// is the stable wire form.
type Sentinel struct {
	code   string
	msg    string
	status int
}

// Error returns the sentinel's canonical message.
func (s *Sentinel) Error() string { return s.msg }

// Code returns the stable machine-readable code.
func (s *Sentinel) Code() string { return s.code }

// HTTPStatus returns the canonical HTTP status for the sentinel.
func (s *Sentinel) HTTPStatus() int { return s.status }

// The taxonomy. Codes are wire-stable: changing one breaks deployed
// clients (the public-API-surface CI gate covers the Go names; the
// round-trip test in this package covers the codes).
var (
	// ErrBadQuery: the query or database text does not parse.
	ErrBadQuery = &Sentinel{code: "bad_query", msg: "bad query", status: http.StatusBadRequest}
	// ErrBadInstance: syntactically valid input that is semantically
	// unusable — answer-binding arity mismatch, atom arity mismatch
	// against the database, head variables missing from the body.
	ErrBadInstance = &Sentinel{code: "bad_instance", msg: "invalid instance", status: http.StatusUnprocessableEntity}
	// ErrInvalidWhyNo: the instance violates the Why-No preconditions of
	// Section 2 (the query already holds on the real database, or cannot
	// hold even with every candidate tuple).
	ErrInvalidWhyNo = &Sentinel{code: "invalid_whyno", msg: "invalid why-no instance", status: http.StatusUnprocessableEntity}
	// ErrNotCause: a responsibility was requested for a tuple that can
	// never be a cause (exogenous, or not a tuple of the database).
	ErrNotCause = &Sentinel{code: "not_cause", msg: "tuple cannot be a cause", status: http.StatusUnprocessableEntity}
	// ErrSessionNotFound: the addressed database session does not exist
	// (never created, dropped, or evicted).
	ErrSessionNotFound = &Sentinel{code: "session_not_found", msg: "unknown database session", status: http.StatusNotFound}
	// ErrQueryNotFound: the addressed prepared query does not exist in
	// its session.
	ErrQueryNotFound = &Sentinel{code: "query_not_found", msg: "unknown prepared query", status: http.StatusNotFound}
	// ErrBudgetExceeded: the computation did not finish within its
	// admission/timeout budget (server at capacity, or the request's
	// deadline expired while queued or computing).
	ErrBudgetExceeded = &Sentinel{code: "budget_exceeded", msg: "computation budget exceeded", status: http.StatusServiceUnavailable}
	// ErrSessionClosed: the Session was used after Close.
	ErrSessionClosed = &Sentinel{code: "session_closed", msg: "session is closed", status: http.StatusConflict}
	// ErrTupleNotFound: a mutation addressed a tuple id that does not
	// exist or was already deleted.
	ErrTupleNotFound = &Sentinel{code: "tuple_not_found", msg: "unknown tuple", status: http.StatusNotFound}
)

// registry maps wire codes back to sentinels for client rehydration.
var registry = func() map[string]*Sentinel {
	m := make(map[string]*Sentinel)
	for _, s := range []*Sentinel{
		ErrBadQuery, ErrBadInstance, ErrInvalidWhyNo, ErrNotCause,
		ErrSessionNotFound, ErrQueryNotFound, ErrBudgetExceeded, ErrSessionClosed,
		ErrTupleNotFound,
	} {
		m[s.code] = s
	}
	return m
}()

// tagged carries a sentinel alongside the original error without
// altering its message. Unwrap exposes both, so errors.Is matches the
// sentinel and any deeper wrapped errors alike.
type tagged struct {
	s   *Sentinel
	err error
}

func (t tagged) Error() string   { return t.err.Error() }
func (t tagged) Unwrap() []error { return []error{t.s, t.err} }

// Tag attaches sentinel s to err, preserving err's message
// byte-for-byte. Tag(nil err) returns nil so call sites can tag
// unconditionally.
func Tag(s *Sentinel, err error) error {
	if err == nil {
		return nil
	}
	return tagged{s: s, err: err}
}

// CodeOf returns the wire code of the innermost sentinel in err's
// tree, or "" when err carries no taxonomy tag.
func CodeOf(err error) string {
	var s *Sentinel
	if errors.As(err, &s) {
		return s.code
	}
	return ""
}

// FromCode resolves a wire code back to its sentinel; unknown codes
// (from a newer or foreign server) return nil.
func FromCode(code string) *Sentinel {
	return registry[code]
}

// StatusOf maps err to an HTTP status via its sentinel; untagged
// errors map to fallback.
func StatusOf(err error, fallback int) int {
	var s *Sentinel
	if errors.As(err, &s) {
		return s.status
	}
	return fallback
}
