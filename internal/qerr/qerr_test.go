package qerr

import (
	"errors"
	"fmt"
	"net/http"
	"testing"
)

func TestTagPreservesMessageAndMatchesSentinel(t *testing.T) {
	orig := fmt.Errorf("whyno: query q already holds on the real database")
	err := Tag(ErrInvalidWhyNo, orig)
	if err.Error() != orig.Error() {
		t.Errorf("Tag changed the message: %q vs %q", err.Error(), orig.Error())
	}
	if !errors.Is(err, ErrInvalidWhyNo) {
		t.Error("errors.Is(tagged, sentinel) = false")
	}
	if errors.Is(err, ErrBadQuery) {
		t.Error("tagged error matches a foreign sentinel")
	}
	if !errors.Is(fmt.Errorf("outer: %w", err), ErrInvalidWhyNo) {
		t.Error("sentinel lost through further wrapping")
	}
	if Tag(ErrBadQuery, nil) != nil {
		t.Error("Tag(nil) != nil")
	}
}

func TestCodeRoundTrip(t *testing.T) {
	for _, s := range []*Sentinel{
		ErrBadQuery, ErrBadInstance, ErrInvalidWhyNo, ErrNotCause,
		ErrSessionNotFound, ErrQueryNotFound, ErrBudgetExceeded, ErrSessionClosed,
		ErrTupleNotFound,
	} {
		if got := FromCode(s.Code()); got != s {
			t.Errorf("FromCode(%q) = %v; want %v", s.Code(), got, s)
		}
		if got := CodeOf(Tag(s, errors.New("x"))); got != s.Code() {
			t.Errorf("CodeOf(Tag(%q)) = %q", s.Code(), got)
		}
	}
	if FromCode("no_such_code") != nil {
		t.Error("unknown code resolved to a sentinel")
	}
	if CodeOf(errors.New("untagged")) != "" {
		t.Error("untagged error has a code")
	}
}

func TestStatusOf(t *testing.T) {
	if got := StatusOf(Tag(ErrSessionNotFound, errors.New("x")), 500); got != http.StatusNotFound {
		t.Errorf("StatusOf(session_not_found) = %d", got)
	}
	if got := StatusOf(errors.New("untagged"), http.StatusInternalServerError); got != http.StatusInternalServerError {
		t.Errorf("StatusOf(untagged) = %d; want fallback", got)
	}
}

// TestWireCodesFrozen pins the wire codes: changing one breaks
// deployed clients, so a change here must be deliberate.
func TestWireCodesFrozen(t *testing.T) {
	want := map[*Sentinel]string{
		ErrBadQuery:        "bad_query",
		ErrBadInstance:     "bad_instance",
		ErrInvalidWhyNo:    "invalid_whyno",
		ErrNotCause:        "not_cause",
		ErrSessionNotFound: "session_not_found",
		ErrQueryNotFound:   "query_not_found",
		ErrBudgetExceeded:  "budget_exceeded",
		ErrSessionClosed:   "session_closed",
		ErrTupleNotFound:   "tuple_not_found",
	}
	for s, code := range want {
		if s.Code() != code {
			t.Errorf("sentinel %q: code changed to %q", code, s.Code())
		}
	}
}
