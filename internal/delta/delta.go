// Package delta maintains cached explanation state under tuple
// mutations, replacing the cold rebuild that PR-8-style invalidation
// forces with an in-place patch of the minimal endogenous lineage
// (Definition 3.1 / Theorem 3.2 of Meliou et al., VLDB 2010).
//
// The two provable patch rules:
//
//   - Insert: the lineage delta of one inserted tuple is exactly the
//     conjuncts of the valuations whose witness uses that tuple, which
//     the planned pipeline computes directly with one atom position
//     pinned to the new row (ra.NLineageConjunctsPinned) — one pinned
//     evaluation per atom occurrence of the mutated relation, so
//     self-joins are covered by the union. Merging the delta into the
//     cached minimal DNF and re-minimizing yields the same unique
//     minimal antichain a cold evaluation would, because every minimal
//     conjunct of (old ∪ delta) is minimal in (min(old) ∪ delta).
//   - Endogenous delete: deleting an endogenous tuple t kills exactly
//     the valuations whose witness contains t, so the new minimal DNF
//     is the cached one with every conjunct containing t dropped — a
//     subset of an antichain is an antichain, and any t-free conjunct's
//     absorber was itself t-free, so no re-minimization is needed. The
//     patch consults no data at all.
//
// Everything else falls back to a cold rebuild, reported via the ok
// result so callers can count the fallback rate (/v1/stats): exogenous
// deletions (the cached DNF minimized away the very conjuncts that
// could resurface), and Why-No engines (their lineage is evaluated
// over a hypothetical instance, not the live database).
//
// A patched engine is byte-equivalent to a cold one: rankings are
// recomputed per request from the lineage, and the differential
// harness (internal/difftest) holds patched state to a cold rebuild
// after every mutation of every sweep.
package delta

import (
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/ra"
	"github.com/querycause/querycause/internal/rel"
)

// Mutation describes one applied tuple mutation. Exactly one of
// Inserted/Deleted is a valid tuple id; the other is -1. The database
// handed to PatchDNF/Apply is the post-mutation state.
type Mutation struct {
	Rel      string      // mutated relation
	Inserted rel.TupleID // id of the inserted tuple, -1 for deletions
	Deleted  rel.TupleID // id of the deleted tuple, -1 for insertions
	WasEndo  bool        // the deleted tuple was endogenous
}

// PatchDNF computes the post-mutation minimal endogenous lineage of q
// from the pre-mutation cached one. ok=false means the delta path
// cannot prove the patch safe (exogenous delete, or a mutation shape
// it does not handle) and the caller must rebuild cold; the returned
// DNF is meaningless then. On ok=true the result is byte-identical to
// lineage.NLineageOf on the post-mutation database.
func PatchDNF(db *rel.Database, q *rel.Query, cached lineage.DNF, m Mutation) (lineage.DNF, bool, error) {
	switch {
	case m.Inserted >= 0:
		return patchInsert(db, q, cached, m)
	case m.Deleted >= 0 && m.WasEndo:
		return patchEndoDelete(cached, m.Deleted), true, nil
	}
	// Exogenous delete: minimization already canceled conjuncts against
	// exogenous-witnessed valuations this delete may have killed (and
	// may have set True from one); only re-evaluation can tell.
	return lineage.DNF{}, false, nil
}

func patchInsert(db *rel.Database, q *rel.Query, cached lineage.DNF, m Mutation) (lineage.DNF, bool, error) {
	if cached.True {
		// The query already held on the exogenous part alone; inserting
		// cannot remove that witness.
		return cached, true, nil
	}
	merged := append([]lineage.Conjunct(nil), cached.Conjuncts...)
	seen := make(map[string]bool, len(merged))
	var key []byte
	for _, c := range merged {
		seen[string(conjunctKey(key[:0], c))] = true
	}
	for i, a := range q.Atoms {
		if a.Pred != m.Rel {
			continue
		}
		conjs, isTrue, err := ra.NLineageConjunctsPinned(db, q, i, m.Inserted)
		if err != nil {
			return lineage.DNF{}, false, err
		}
		if isTrue {
			// A new all-exogenous witness trivializes Φⁿ.
			return lineage.DNF{True: true}, true, nil
		}
		for _, c := range conjs {
			key = conjunctKey(key[:0], c)
			if !seen[string(key)] {
				seen[string(key)] = true
				merged = append(merged, lineage.Conjunct(c))
			}
		}
	}
	return lineage.RemoveRedundant(lineage.DNF{Conjuncts: merged}), true, nil
}

func patchEndoDelete(cached lineage.DNF, id rel.TupleID) lineage.DNF {
	if cached.True {
		return cached
	}
	kept := make([]lineage.Conjunct, 0, len(cached.Conjuncts))
	for _, c := range cached.Conjuncts {
		if !c.Contains(id) {
			kept = append(kept, c)
		}
	}
	// The filtered subset keeps the canonical order and stays minimal;
	// an empty result is the DNF of a query that no longer holds.
	return lineage.DNF{Conjuncts: kept}
}

// Apply revives one invalidated engine from its cached lineage under
// the mutation: it patches the DNF and builds a fresh engine around it
// (lazy caches empty — certificates are the caller's to re-prime, flow
// networks and exact indexes rebuild on demand against the mutated
// database). ok=false means the delta path declined (Why-No engine, or
// PatchDNF could not prove safety) and the caller should fall back to
// dropping the engine for a cold rebuild.
func Apply(db *rel.Database, eng *core.Engine, m Mutation) (*core.Engine, bool, error) {
	if eng.WhyNo() {
		return nil, false, nil
	}
	patched, ok, err := PatchDNF(db, eng.Query(), eng.NLineage(), m)
	if err != nil || !ok {
		return nil, false, err
	}
	ne, err := core.NewWhySoFromLineage(db, eng.Query(), patched)
	if err != nil {
		return nil, false, err
	}
	return ne, true, nil
}

// EqualDNF reports whether two minimal DNFs are identical. Both sides
// must be in canonical order (the RemoveRedundant invariant), so this
// is a structural compare. A mutation that leaves an answer's minimal
// lineage unchanged provably leaves every cause's responsibility
// *value* unchanged (min|Γ| is a function of the lineage alone) — the
// re-rank bound check. Contingency witnesses are not covered: the flow
// path picks its minimum cut from the full valuation set, so callers
// needing byte-stable witnesses must still re-rank.
func EqualDNF(a, b lineage.DNF) bool {
	if a.True != b.True || len(a.Conjuncts) != len(b.Conjuncts) {
		return false
	}
	for i := range a.Conjuncts {
		if !a.Conjuncts[i].Equal(b.Conjuncts[i]) {
			return false
		}
	}
	return true
}

// conjunctKey packs a conjunct's ids into dst as a map key.
func conjunctKey(dst []byte, c []rel.TupleID) []byte {
	for _, id := range c {
		u := uint64(id)
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24), byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return dst
}
