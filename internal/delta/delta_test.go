package delta

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/rel"
)

func chainDB() *rel.Database {
	db := rel.NewDatabase()
	db.MustAdd("R", true, "a", "b1")
	db.MustAdd("R", true, "a", "b2")
	db.MustAdd("R", false, "a2", "b1")
	db.MustAdd("S", true, "b1", "c1")
	db.MustAdd("S", true, "b2", "c1")
	db.MustAdd("S", false, "b2", "c2")
	db.MustAdd("T", true, "c1")
	db.MustAdd("T", false, "c2")
	return db
}

func chainQuery() *rel.Query {
	return rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z")),
	)
}

// assertPatchEqualsCold applies the mutation m (already performed on
// db) to the cached pre-mutation DNF and requires the patch to be
// byte-identical to a cold evaluation on the mutated database.
func assertPatchEqualsCold(t *testing.T, db *rel.Database, q *rel.Query, cached lineage.DNF, m Mutation) {
	t.Helper()
	patched, ok, err := PatchDNF(db, q, cached, m)
	if err != nil {
		t.Fatalf("PatchDNF(%+v): %v", m, err)
	}
	if !ok {
		t.Fatalf("PatchDNF(%+v) fell back; expected a provable patch", m)
	}
	cold, err := lineage.NLineageOf(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualDNF(patched, cold) {
		t.Fatalf("patched DNF %v != cold DNF %v after %+v", patched, cold, m)
	}
	// EqualDNF is structural; also pin the rendered form.
	if patched.String() != cold.String() {
		t.Fatalf("patched render %q != cold %q", patched, cold)
	}
}

func TestPatchInsert(t *testing.T) {
	cases := []struct {
		name string
		rel  string
		endo bool
		args []rel.Value
	}{
		{"endo joining row", "R", true, []rel.Value{"a3", "b1"}},
		{"exo joining row", "R", false, []rel.Value{"a4", "b2"}},
		{"endo non-joining row", "S", true, []rel.Value{"b9", "c9"}},
		{"endo absorbed row", "S", true, []rel.Value{"b1", "c1"}},
		{"new T value", "T", true, []rel.Value{"c2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, q := chainDB(), chainQuery()
			cached, err := lineage.NLineageOf(db, q)
			if err != nil {
				t.Fatal(err)
			}
			id, err := db.Add(tc.rel, tc.endo, tc.args...)
			if err != nil {
				t.Fatal(err)
			}
			assertPatchEqualsCold(t, db, q, cached, Mutation{Rel: tc.rel, Inserted: id, Deleted: -1})
		})
	}
}

func TestPatchInsertTrivializes(t *testing.T) {
	// An all-exogenous witness appearing via the insert must flip the
	// patched DNF to True, exactly like a cold evaluation.
	db := rel.NewDatabase()
	db.MustAdd("R", true, "a")
	db.MustAdd("S", false, "a")
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x")), rel.NewAtom("S", rel.V("x")))
	cached, err := lineage.NLineageOf(db, q)
	if err != nil {
		t.Fatal(err)
	}
	id := db.MustAdd("R", false, "a")
	assertPatchEqualsCold(t, db, q, cached, Mutation{Rel: "R", Inserted: id, Deleted: -1})
	patched, _, _ := PatchDNF(db, q, cached, Mutation{Rel: "R", Inserted: id, Deleted: -1})
	if !patched.True {
		t.Fatalf("patched DNF %v should be True", patched)
	}
}

func TestPatchInsertSelfJoin(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("E", true, "a", "b")
	db.MustAdd("E", true, "b", "c")
	db.MustAdd("E", false, "c", "a")
	q := rel.NewBoolean(
		rel.NewAtom("E", rel.V("x"), rel.V("y")),
		rel.NewAtom("E", rel.V("y"), rel.V("z")),
	)
	cached, err := lineage.NLineageOf(db, q)
	if err != nil {
		t.Fatal(err)
	}
	// The inserted edge participates at both atom positions (b→b joins
	// with itself and with a→b / b→c).
	id := db.MustAdd("E", true, "b", "b")
	assertPatchEqualsCold(t, db, q, cached, Mutation{Rel: "E", Inserted: id, Deleted: -1})
}

func TestPatchEndoDelete(t *testing.T) {
	for id := rel.TupleID(0); int(id) < chainDB().NumTuples(); id++ {
		db, q := chainDB(), chainQuery()
		if !db.Endo(id) {
			continue
		}
		cached, err := lineage.NLineageOf(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
		assertPatchEqualsCold(t, db, q, cached, Mutation{Rel: db.Tuple(id).Rel, Inserted: -1, Deleted: id, WasEndo: true})
	}
}

func TestPatchEndoDeleteToEmpty(t *testing.T) {
	db := rel.NewDatabase()
	id := db.MustAdd("R", true, "a")
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x")))
	cached, err := lineage.NLineageOf(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(id); err != nil {
		t.Fatal(err)
	}
	assertPatchEqualsCold(t, db, q, cached, Mutation{Rel: "R", Inserted: -1, Deleted: id, WasEndo: true})
}

func TestPatchExoDeleteFallsBack(t *testing.T) {
	db, q := chainDB(), chainQuery()
	cached, err := lineage.NLineageOf(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(2); err != nil { // R(a2,b1), exogenous
		t.Fatal(err)
	}
	_, ok, err := PatchDNF(db, q, cached, Mutation{Rel: "R", Inserted: -1, Deleted: 2, WasEndo: false})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("exogenous delete must fall back to a cold rebuild")
	}
}

func TestApplyMatchesColdEngine(t *testing.T) {
	db, q := chainDB(), chainQuery()
	eng, err := core.NewWhySo(db, q)
	if err != nil {
		t.Fatal(err)
	}
	id := db.MustAdd("R", true, "a5", "b1")
	patched, ok, err := Apply(db, eng, Mutation{Rel: "R", Inserted: id, Deleted: -1})
	if err != nil || !ok {
		t.Fatalf("Apply: ok=%v err=%v", ok, err)
	}
	cold, err := core.NewWhySo(db, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []core.Mode{core.ModeAuto, core.ModeExact} {
		got, err := patched.RankAll(mode)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cold.RankAll(mode)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mode %v: patched ranking %v != cold %v", mode, got, want)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("mode %v: rendered rankings differ", mode)
		}
	}
}

func TestApplyDeclinesWhyNo(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", true, "a")
	db.MustAdd("S", true, "a")
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x")), rel.NewAtom("S", rel.V("x")))
	eng, err := core.NewWhyNo(db, q)
	if err != nil {
		t.Fatal(err)
	}
	id := db.MustAdd("R", true, "c")
	_, ok, err := Apply(db, eng, Mutation{Rel: "R", Inserted: id, Deleted: -1})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Apply must decline Why-No engines")
	}
}
