// Package ra is the planned streaming evaluator of the relational data
// plane: composable relational-algebra iterators — scan, selection,
// projection-to-slots, and hash join keyed on shared variables — running
// directly over internal/rel's dictionary-interned columnar relations.
//
// A conjunctive query is compiled once into a left-deep pipeline whose
// atom order a small planner picks by estimated selectivity: atoms
// joined to an already-bound variable before unconnected (cartesian)
// arms, then by constants bound, shared-variable count, and relation
// cardinality (see plan.go). Evaluation then streams variable bindings through the
// pipeline as dense uint32 code slots: the first step scans its
// relation (constant columns pre-filtered through the lazy code
// indexes), and every later step probes a hash table built over its
// relation keyed by the columns holding already-bound variables.
// Comparisons are uint32 code comparisons; no Value string is touched
// until a result is materialized.
//
// Provenance rides along: every streamed binding carries the
// contributing tuple IDs (one witness per atom), so the endogenous
// lineage of Meliou et al. (VLDB 2010, §3) is captured during
// evaluation — NLineageConjuncts assembles Φⁿ's conjuncts, already in
// the dense TupleID space lineage.Index interns, in the same pass that
// evaluates the query, instead of a second evaluation pass.
//
// Importing this package installs it as the backend behind
// rel.Valuations / rel.Holds / rel.HoldsWithout (see
// rel.RegisterEvaluator); the naive reference evaluator stays available
// as rel.EvalNaive, and internal/difftest differential-tests the two on
// every sweep.
package ra

import (
	"github.com/querycause/querycause/internal/rel"
)

func init() {
	rel.RegisterEvaluator(&rel.Evaluator{
		Valuations:   Valuations,
		Holds:        Holds,
		HoldsWithout: HoldsWithout,
	})
}

// Valuations enumerates all valuations of the query body over db
// through the planned pipeline. Semantics match rel.EvalNaive (the
// head, if any, is ignored); enumeration order is the deterministic
// pipeline order, which differs from the naive backtracking order.
func Valuations(db *rel.Database, q *rel.Query) ([]rel.Valuation, error) {
	p, err := compile(db, q)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, nil
	}
	var out []rel.Valuation
	p.run(nil, func(slots []uint32, witness []rel.TupleID) bool {
		binding := make(map[string]rel.Value, len(p.varNames))
		for s, name := range p.varNames {
			binding[name] = db.Dict().Value(slots[s])
		}
		out = append(out, rel.Valuation{Binding: binding, Witness: append([]rel.TupleID(nil), witness...)})
		return true
	})
	return out, nil
}

// Holds reports whether the Boolean query holds, stopping at the first
// streamed valuation (hash tables for later pipeline steps are never
// even built when an early step has no matches).
func Holds(db *rel.Database, q *rel.Query) (bool, error) {
	return HoldsWithout(db, q, nil)
}

// HoldsWithout reports whether q holds with the given tuples removed.
// The removal filter is pushed into the scans and hash-table builds, so
// pruned rows never enter the pipeline, and evaluation stops at the
// first surviving valuation.
func HoldsWithout(db *rel.Database, q *rel.Query, removed map[rel.TupleID]bool) (bool, error) {
	p, err := compile(db, q)
	if err != nil {
		return false, err
	}
	if p == nil {
		return false, nil
	}
	found := false
	p.run(removed, func([]uint32, []rel.TupleID) bool {
		found = true
		return false
	})
	return found, nil
}

// NLineageConjuncts evaluates the Boolean query and returns the
// conjuncts of its endogenous lineage Φⁿ (Definition 3.1), captured
// during evaluation: for each streamed valuation the exogenous
// witnesses are dropped on the spot, the surviving tuple IDs form one
// conjunct (sorted, set semantics), and duplicate conjuncts are merged
// as they stream. A valuation witnessed by exogenous tuples alone makes
// Φⁿ ≡ true, reported via isTrue with evaluation cut short.
//
// The caller (lineage.NLineageOf) only minimizes the result; there is
// no separate lineage-building evaluation pass.
func NLineageConjuncts(db *rel.Database, q *rel.Query) (conjuncts [][]rel.TupleID, isTrue bool, err error) {
	return nlineageConjuncts(db, q, -1, 0)
}

// NLineageConjunctsPinned is NLineageConjuncts restricted to the
// valuations whose witness uses tuple id at atom position atom — the
// lineage delta contributed by one inserted tuple at one atom
// occurrence. Callers maintaining a cached DNF under an insert union
// the pinned conjuncts over every atom whose predicate is the inserted
// tuple's relation (self-joins contribute one pin per occurrence;
// duplicates merge under DNF set semantics). isTrue reports an
// all-exogenous pinned witness, which makes the whole Φⁿ ≡ true.
func NLineageConjunctsPinned(db *rel.Database, q *rel.Query, atom int, id rel.TupleID) (conjuncts [][]rel.TupleID, isTrue bool, err error) {
	return nlineageConjuncts(db, q, atom, id)
}

func nlineageConjuncts(db *rel.Database, q *rel.Query, pinAtom int, pinID rel.TupleID) (conjuncts [][]rel.TupleID, isTrue bool, err error) {
	p, err := compile(db, q)
	if err != nil {
		return nil, false, err
	}
	if p == nil {
		return nil, false, nil
	}
	seen := make(map[string]bool)
	var key []byte
	conj := make([]rel.TupleID, 0, len(q.Atoms))
	p.runPinned(nil, pinAtom, pinID, func(_ []uint32, witness []rel.TupleID) bool {
		conj = conj[:0]
		for _, id := range witness {
			if db.Endo(id) {
				conj = append(conj, id)
			}
		}
		if len(conj) == 0 {
			isTrue = true
			return false
		}
		sortIDs(conj)
		conj = dedupIDs(conj)
		key = key[:0]
		for _, id := range conj {
			key = appendID(key, id)
		}
		if !seen[string(key)] {
			seen[string(key)] = true
			conjuncts = append(conjuncts, append([]rel.TupleID(nil), conj...))
		}
		return true
	})
	if isTrue {
		return nil, true, nil
	}
	return conjuncts, false, nil
}

// sortIDs sorts a small TupleID slice in place (insertion sort: witness
// lists are atom-count long).
func sortIDs(ids []rel.TupleID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// dedupIDs removes adjacent duplicates from a sorted slice in place.
func dedupIDs(ids []rel.TupleID) []rel.TupleID {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || ids[i-1] != id {
			out = append(out, id)
		}
	}
	return out
}

func appendID(dst []byte, id rel.TupleID) []byte {
	u := uint64(id)
	return append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24), byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}
