package ra

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/querycause/querycause/internal/rel"
)

// canon serializes a valuation list as a sorted set of canonical keys,
// so naive and planned enumerations compare independent of order.
func canon(t *testing.T, vals []rel.Valuation) []string {
	t.Helper()
	keys := make([]string, 0, len(vals))
	for _, v := range vals {
		var b strings.Builder
		names := make([]string, 0, len(v.Binding))
		for name := range v.Binding {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "%s=%s;", name, v.Binding[name])
		}
		b.WriteString("|")
		for _, id := range v.Witness {
			fmt.Fprintf(&b, "%d,", id)
		}
		keys = append(keys, b.String())
	}
	sort.Strings(keys)
	return keys
}

// assertAgree requires the planned pipeline and the naive reference to
// produce byte-identical valuation sets after sorting, and agreeing
// Holds results.
func assertAgree(t *testing.T, db *rel.Database, q *rel.Query) {
	t.Helper()
	naive, nerr := rel.EvalNaive(db, q)
	planned, perr := Valuations(db, q)
	if (nerr == nil) != (perr == nil) {
		t.Fatalf("error mismatch: naive=%v planned=%v", nerr, perr)
	}
	if nerr != nil {
		if nerr.Error() != perr.Error() {
			t.Fatalf("error texts differ:\n  naive:   %v\n  planned: %v", nerr, perr)
		}
		return
	}
	nk, pk := canon(t, naive), canon(t, planned)
	if len(nk) != len(pk) {
		t.Fatalf("naive found %d valuations, planned %d\nnaive: %v\nplanned: %v", len(nk), len(pk), nk, pk)
	}
	for i := range nk {
		if nk[i] != pk[i] {
			t.Fatalf("valuation %d differs:\n  naive:   %s\n  planned: %s", i, nk[i], pk[i])
		}
	}
	hn, _ := rel.HoldsNaive(db, q)
	hp, err := Holds(db, q)
	if err != nil {
		t.Fatalf("Holds: %v", err)
	}
	if hn != hp {
		t.Fatalf("Holds disagrees: naive=%v planned=%v", hn, hp)
	}
}

func chainDB(t *testing.T) *rel.Database {
	t.Helper()
	db := rel.NewDatabase()
	db.MustAdd("R", true, "a", "b1")
	db.MustAdd("R", true, "a", "b2")
	db.MustAdd("R", false, "a2", "b1")
	db.MustAdd("S", true, "b1", "c1")
	db.MustAdd("S", true, "b2", "c1")
	db.MustAdd("S", false, "b2", "c2")
	db.MustAdd("T", true, "c1")
	db.MustAdd("T", false, "c2")
	return db
}

func TestJoinChainAgreesWithNaive(t *testing.T) {
	db := chainDB(t)
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z")),
	)
	assertAgree(t, db, q)
}

func TestCartesianNoSharedVars(t *testing.T) {
	db := chainDB(t)
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("T", rel.V("w")),
	)
	assertAgree(t, db, q)
}

func TestConstantOnlyAtom(t *testing.T) {
	db := chainDB(t)
	for _, q := range []*rel.Query{
		rel.NewBoolean(rel.NewAtom("R", rel.C("a"), rel.C("b1"))),
		rel.NewBoolean(rel.NewAtom("R", rel.C("a"), rel.C("nope"))),
		rel.NewBoolean(
			rel.NewAtom("T", rel.C("c1")),
			rel.NewAtom("S", rel.V("y"), rel.V("z")),
		),
	} {
		assertAgree(t, db, q)
	}
}

func TestSelfJoin(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("E", true, "a", "b")
	db.MustAdd("E", true, "b", "c")
	db.MustAdd("E", true, "c", "a")
	db.MustAdd("E", false, "a", "a")
	// Paths of length two, including through the self-loop.
	q := rel.NewBoolean(
		rel.NewAtom("E", rel.V("x"), rel.V("y")),
		rel.NewAtom("E", rel.V("y"), rel.V("z")),
	)
	assertAgree(t, db, q)
	// Repeated variable inside one atom: the self-loop alone.
	q2 := rel.NewBoolean(rel.NewAtom("E", rel.V("x"), rel.V("x")))
	assertAgree(t, db, q2)
	// Triangle self-join closing back on the first variable.
	q3 := rel.NewBoolean(
		rel.NewAtom("E", rel.V("x"), rel.V("y")),
		rel.NewAtom("E", rel.V("y"), rel.V("z")),
		rel.NewAtom("E", rel.V("z"), rel.V("x")),
	)
	assertAgree(t, db, q3)
}

func TestSingleAtom(t *testing.T) {
	db := chainDB(t)
	assertAgree(t, db, rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.V("y"))))
	assertAgree(t, db, rel.NewBoolean(rel.NewAtom("T", rel.V("x"))))
}

func TestEmptyAndMissingRelations(t *testing.T) {
	db := chainDB(t)
	// Missing relation: empty result, nil error (naive contract).
	assertAgree(t, db, rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("Nope", rel.V("y")),
	))
	// Missing relation earlier in atom order than a later arity
	// mismatch: the empty result wins, no error.
	assertAgree(t, db, rel.NewBoolean(
		rel.NewAtom("Nope", rel.V("x")),
		rel.NewAtom("R", rel.V("x")),
	))
	// Arity mismatch alone is an error from both backends.
	assertAgree(t, db, rel.NewBoolean(rel.NewAtom("R", rel.V("x"))))
}

func TestZeroAtomQuery(t *testing.T) {
	db := chainDB(t)
	assertAgree(t, db, rel.NewBoolean())
}

func TestConstantNeverInterned(t *testing.T) {
	db := chainDB(t)
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.C("never-seen")),
	)
	assertAgree(t, db, q)
}

func TestHoldsWithoutMatchesNaive(t *testing.T) {
	db := chainDB(t)
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z")),
	)
	n := db.NumTuples()
	// Every subset of removed tuples over the small database.
	for mask := 0; mask < 1<<n; mask++ {
		removed := make(map[rel.TupleID]bool)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				removed[rel.TupleID(i)] = true
			}
		}
		hn, err := rel.HoldsWithoutNaive(db, q, removed)
		if err != nil {
			t.Fatal(err)
		}
		hp, err := HoldsWithout(db, q, removed)
		if err != nil {
			t.Fatal(err)
		}
		if hn != hp {
			t.Fatalf("HoldsWithout disagrees for removed=%v: naive=%v planned=%v", removed, hn, hp)
		}
	}
}

func TestNLineageConjunctsMatchesTwoPass(t *testing.T) {
	db := chainDB(t)
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z")),
	)
	conjs, isTrue, err := NLineageConjuncts(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if isTrue {
		t.Fatal("lineage reported trivially true on an all-endogenous witness set")
	}
	// Recompute by definition from the naive valuations.
	naive, err := rel.EvalNaive(db, q)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool)
	for _, v := range naive {
		var endo []rel.TupleID
		for _, id := range v.Witness {
			if db.Endo(id) {
				endo = append(endo, id)
			}
		}
		sort.Slice(endo, func(i, j int) bool { return endo[i] < endo[j] })
		want[fmt.Sprint(endo)] = true
	}
	got := make(map[string]bool)
	for _, c := range conjs {
		got[fmt.Sprint(c)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d distinct conjuncts, two-pass %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("two-pass conjunct %s missing from streamed lineage", k)
		}
	}
	// And the trivially-true case: an exogenous-only witness.
	dbx := rel.NewDatabase()
	dbx.MustAdd("R", false, "a")
	dbx.MustAdd("R", true, "b")
	_, isTrue, err = NLineageConjuncts(dbx, rel.NewBoolean(rel.NewAtom("R", rel.C("a"))))
	if err != nil {
		t.Fatal(err)
	}
	if !isTrue {
		t.Fatal("exogenous-only witness must make the endogenous lineage true")
	}
}

// TestNLineageConjunctsPinned holds the pinned evaluation to its
// definition: for every atom position and every tuple, the pinned
// conjuncts are exactly the conjuncts of the full valuations whose
// witness uses that tuple at that atom — including self-joins, where
// the same tuple contributes different conjuncts per occurrence.
func TestNLineageConjunctsPinned(t *testing.T) {
	selfDB := rel.NewDatabase()
	selfDB.MustAdd("E", true, "a", "b")
	selfDB.MustAdd("E", true, "b", "c")
	selfDB.MustAdd("E", false, "c", "a")
	selfDB.MustAdd("E", true, "b", "b")
	cases := []struct {
		db *rel.Database
		q  *rel.Query
	}{
		{chainDB(t), rel.NewBoolean(
			rel.NewAtom("R", rel.V("x"), rel.V("y")),
			rel.NewAtom("S", rel.V("y"), rel.V("z")),
			rel.NewAtom("T", rel.V("z")),
		)},
		{selfDB, rel.NewBoolean(
			rel.NewAtom("E", rel.V("x"), rel.V("y")),
			rel.NewAtom("E", rel.V("y"), rel.V("z")),
		)},
	}
	canonConj := func(c []rel.TupleID) string {
		sorted := append([]rel.TupleID(nil), c...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		out := sorted[:0]
		for i, id := range sorted {
			if i == 0 || sorted[i-1] != id {
				out = append(out, id)
			}
		}
		return fmt.Sprint(out)
	}
	for ci, tc := range cases {
		naive, err := rel.EvalNaive(tc.db, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		for atom := range tc.q.Atoms {
			for id := rel.TupleID(0); int(id) < tc.db.NumTuples(); id++ {
				want := make(map[string]bool)
				wantTrue := false
				for _, v := range naive {
					if v.Witness[atom] != id {
						continue
					}
					var endo []rel.TupleID
					for _, w := range v.Witness {
						if tc.db.Endo(w) {
							endo = append(endo, w)
						}
					}
					if len(endo) == 0 {
						wantTrue = true
					}
					want[canonConj(endo)] = true
				}
				got, isTrue, err := NLineageConjunctsPinned(tc.db, tc.q, atom, id)
				if err != nil {
					t.Fatal(err)
				}
				if isTrue != wantTrue {
					t.Fatalf("case %d atom %d id %d: pinned isTrue=%v, naive says %v", ci, atom, id, isTrue, wantTrue)
				}
				if wantTrue {
					continue // evaluation legitimately cut short
				}
				gotSet := make(map[string]bool)
				for _, c := range got {
					gotSet[canonConj(c)] = true
				}
				if len(gotSet) != len(want) {
					t.Fatalf("case %d atom %d id %d: pinned %d conjuncts %v, naive %d %v", ci, atom, id, len(gotSet), gotSet, len(want), want)
				}
				for k := range want {
					if !gotSet[k] {
						t.Fatalf("case %d atom %d id %d: conjunct %s missing from pinned lineage", ci, atom, id, k)
					}
				}
			}
		}
	}
}

// TestPlannerPrefersSelective pins the atom-ordering heuristic:
// joined-to-bound-variables beats unconnected, then constants beat
// shared-variable count beat cardinality, ties to the lowest atom
// index.
func TestPlannerPrefersSelective(t *testing.T) {
	db := rel.NewDatabase()
	for i := 0; i < 20; i++ {
		db.MustAdd("Big", true, rel.Value(fmt.Sprintf("b%d", i)), "x")
	}
	db.MustAdd("Small", true, "x", "y")
	db.MustAdd("Const", true, "k", "x")

	q := rel.NewBoolean(
		rel.NewAtom("Big", rel.V("a"), rel.V("b")),
		rel.NewAtom("Small", rel.V("b"), rel.V("c")),
		rel.NewAtom("Const", rel.C("k"), rel.V("b")),
	)
	p, err := compile(db, q)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for _, st := range p.steps {
		order = append(order, st.atom)
	}
	// Const (has a constant) first, then Small (shares b, smaller), then Big.
	if fmt.Sprint(order) != "[2 1 0]" {
		t.Fatalf("planner order = %v, want [2 1 0]", order)
	}
	assertAgree(t, db, q)
}

// TestPlannerAvoidsCartesianArm pins the connectivity rule on the
// Fig. 1 genre-query shape: with constants on both the first and last
// atom, the last atom's constant must NOT pull it ahead of the joined
// middle atoms — evaluated unconnected it multiplies the pipeline by
// its match count instead of filtering it.
func TestPlannerAvoidsCartesianArm(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("D", true, "d1", "k")
	db.MustAdd("MD", true, "d1", "m1")
	db.MustAdd("G", true, "m1", "g")
	db.MustAdd("G", true, "m2", "g")

	q := rel.NewBoolean(
		rel.NewAtom("D", rel.V("d"), rel.C("k")),
		rel.NewAtom("MD", rel.V("d"), rel.V("m")),
		rel.NewAtom("G", rel.V("m"), rel.C("g")),
	)
	p, err := compile(db, q)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for _, st := range p.steps {
		order = append(order, st.atom)
	}
	// D (constant head) first, then MD (joins d); G joins m only after
	// MD binds it, its constant notwithstanding.
	if fmt.Sprint(order) != "[0 1 2]" {
		t.Fatalf("planner order = %v, want [0 1 2]", order)
	}
	if len(p.steps[2].join) == 0 {
		t.Fatalf("G step has no join columns — cartesian arm")
	}
	assertAgree(t, db, q)
}

// TestRandomizedAgreement cross-checks a few hundred structured random
// databases and join shapes against the naive evaluator.
func TestRandomizedAgreement(t *testing.T) {
	shapes := []*rel.Query{
		rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y"), rel.V("z"))),
		rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y"), rel.V("x"))),
		rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.V("x"))),
		rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.C("v1")), rel.NewAtom("S", rel.V("x"), rel.V("y"))),
		rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("z"), rel.V("w"))),
	}
	vals := []rel.Value{"v0", "v1", "v2"}
	for seed := 0; seed < 50; seed++ {
		db := rel.NewDatabase()
		s := uint64(seed)*2654435761 + 12345
		next := func(n int) int {
			s = s*6364136223846793005 + 1442695040888963407
			return int((s >> 33) % uint64(n))
		}
		for i := 0; i < 8; i++ {
			db.MustAdd("R", next(2) == 0, vals[next(3)], vals[next(3)])
		}
		for i := 0; i < 8; i++ {
			db.MustAdd("S", next(2) == 0, vals[next(3)], vals[next(3)])
		}
		for _, q := range shapes {
			assertAgree(t, db, q)
		}
	}
}
