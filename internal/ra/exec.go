package ra

import (
	"github.com/querycause/querycause/internal/rel"
)

// runner is the per-evaluation state of a compiled plan: step inputs
// are prepared lazily (a hash table or filtered row list is only built
// the first time the pipeline reaches that step, so an early empty scan
// costs nothing downstream), and the slot and witness buffers are
// reused across the whole enumeration.
type runner struct {
	p        *plan
	removed  map[rel.TupleID]bool
	pinAtom  int         // atom index restricted to the single row of pinID; -1 = no pin
	pinID    rel.TupleID // only meaningful when pinAtom >= 0
	prepared []bool
	all      []bool               // scan step streams every row unfiltered
	lists    [][]int32            // scan steps: filtered row list
	tables   []map[string][]int32 // join steps: packed join codes → rows
	slots    []uint32
	witness  []rel.TupleID
	keyBuf   []byte
	yield    func(slots []uint32, witness []rel.TupleID) bool
}

// run streams every valuation of the plan through yield as (slot codes,
// per-atom witness IDs). Both slices are reused between calls — yield
// must copy what it keeps. Returning false from yield stops the
// enumeration. Rows whose tuple ID is in removed never enter the
// pipeline.
func (p *plan) run(removed map[rel.TupleID]bool, yield func([]uint32, []rel.TupleID) bool) {
	p.runPinned(removed, -1, 0, yield)
}

// runPinned is run with one atom position pinned to a single tuple: the
// step for atom pinAtom matches only the row whose tuple ID is pinID,
// so the stream is exactly the valuations whose witness uses pinID at
// that position — the binding delta of one inserted tuple, computed
// without re-running the unrestricted pipeline.
func (p *plan) runPinned(removed map[rel.TupleID]bool, pinAtom int, pinID rel.TupleID, yield func([]uint32, []rel.TupleID) bool) {
	r := &runner{
		p:        p,
		removed:  removed,
		pinAtom:  pinAtom,
		pinID:    pinID,
		prepared: make([]bool, len(p.steps)),
		all:      make([]bool, len(p.steps)),
		lists:    make([][]int32, len(p.steps)),
		tables:   make([]map[string][]int32, len(p.steps)),
		slots:    make([]uint32, len(p.varNames)),
		witness:  make([]rel.TupleID, p.numAtoms),
		yield:    yield,
	}
	r.dfs(0)
}

func (r *runner) dfs(i int) bool {
	if i == len(r.p.steps) {
		return r.yield(r.slots, r.witness)
	}
	st := &r.p.steps[i]
	if !r.prepared[i] {
		r.prepare(i, st)
	}
	if len(st.join) > 0 {
		r.keyBuf = r.keyBuf[:0]
		for _, cs := range st.join {
			r.keyBuf = appendCode(r.keyBuf, r.slots[cs.slot])
		}
		return r.emit(st, r.tables[i][string(r.keyBuf)], i)
	}
	if r.all[i] {
		n := st.rl.Len()
		for row := 0; row < n; row++ {
			if !r.emitRow(st, int32(row), i) {
				return false
			}
		}
		return true
	}
	return r.emit(st, r.lists[i], i)
}

func (r *runner) emit(st *step, rows []int32, i int) bool {
	for _, row := range rows {
		if !r.emitRow(st, row, i) {
			return false
		}
	}
	return true
}

func (r *runner) emitRow(st *step, row int32, i int) bool {
	for _, cs := range st.bind {
		r.slots[cs.slot] = st.rl.Col(cs.col)[row]
	}
	r.witness[st.atom] = st.rl.RowID(int(row))
	return r.dfs(i + 1)
}

// prepare builds the step's input on first contact: a hash table over
// the packed join-column codes for probe steps, a filtered row list for
// scans — or nothing at all for a full unfiltered scan.
func (r *runner) prepare(i int, st *step) {
	r.prepared[i] = true
	if len(st.join) == 0 {
		if len(st.consts) == 0 && len(st.eq) == 0 && r.removed == nil && st.atom != r.pinAtom {
			r.all[i] = true
			return
		}
		var list []int32
		r.candidateRows(st, func(row int32) { list = append(list, row) })
		r.lists[i] = list
		return
	}
	tbl := make(map[string][]int32)
	var buf []byte
	r.candidateRows(st, func(row int32) {
		buf = buf[:0]
		for _, cs := range st.join {
			buf = appendCode(buf, st.rl.Col(cs.col)[row])
		}
		tbl[string(buf)] = append(tbl[string(buf)], row)
	})
	r.tables[i] = tbl
}

// candidateRows visits the rows passing the step's constant, intra-atom
// equality, and removal filters, in ascending row order. When constant
// columns exist, the smallest matching bucket of the lazy code indexes
// seeds the iteration instead of a full scan.
func (r *runner) candidateRows(st *step, visit func(row int32)) {
	rl := st.rl
	pass := func(row int32) bool {
		for _, cc := range st.consts {
			if rl.Col(cc.col)[row] != cc.code {
				return false
			}
		}
		for _, e := range st.eq {
			if rl.Col(e[0])[row] != rl.Col(e[1])[row] {
				return false
			}
		}
		return r.removed == nil || !r.removed[rl.RowID(int(row))]
	}
	if st.atom == r.pinAtom {
		// The pinned atom admits at most one row: the one holding
		// pinID. Scan backwards — a freshly inserted tuple sits at the
		// end of its relation.
		for row := int32(rl.Len()) - 1; row >= 0; row-- {
			if rl.RowID(int(row)) == r.pinID {
				if pass(row) {
					visit(row)
				}
				return
			}
		}
		return
	}
	if len(st.consts) > 0 {
		seed := rl.CodeIndex(st.consts[0].col)[st.consts[0].code]
		for _, cc := range st.consts[1:] {
			if rows := rl.CodeIndex(cc.col)[cc.code]; len(rows) < len(seed) {
				seed = rows
			}
		}
		for _, row := range seed {
			if pass(row) {
				visit(row)
			}
		}
		return
	}
	for row := int32(0); int(row) < rl.Len(); row++ {
		if pass(row) {
			visit(row)
		}
	}
}

// appendCode packs an interned code into 4 little-endian bytes of a
// hash key.
func appendCode(dst []byte, c uint32) []byte {
	return append(dst, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
}
