package ra

import (
	"fmt"

	"github.com/querycause/querycause/internal/qerr"
	"github.com/querycause/querycause/internal/rel"
)

// colCode requires a column to carry a fixed interned code (a constant
// term, resolved at compile time).
type colCode struct {
	col  int
	code uint32
}

// colSlot ties a column to a variable slot: a join column must equal an
// already-bound slot; a bind column writes a fresh slot.
type colSlot struct {
	col  int
	slot int
}

// step is one atom of the left-deep pipeline, classified at compile
// time. Columns split four ways: consts are equality selections against
// interned codes, eq pairs are intra-atom variable repeats, join columns
// key the hash probe against slots bound by earlier steps, and bind
// columns introduce new slots. A step with no join columns is a scan
// (the pipeline head, a constant-only atom, or a cartesian arm).
type step struct {
	atom   int // index into q.Atoms — witness position
	rl     *rel.Relation
	consts []colCode
	eq     [][2]int
	join   []colSlot
	bind   []colSlot
}

// plan is a compiled left-deep pipeline: steps in planner order, plus
// the slot → variable-name table for materializing bindings.
type plan struct {
	db       *rel.Database
	numAtoms int
	steps    []step
	varNames []string
}

// compile validates the query against db exactly as the naive evaluator
// does, orders the atoms by estimated selectivity, and assigns variable
// slots. A nil plan (with nil error) means the result is provably empty:
// a missing relation, an empty relation, or a constant never interned
// into the database dictionary.
func compile(db *rel.Database, q *rel.Query) (*plan, error) {
	// Mirror rel.EvalNaive's per-atom validation order: the first atom
	// with a missing relation empties the result before a later atom's
	// arity mismatch can raise an error.
	for _, a := range q.Atoms {
		r := db.Relation(a.Pred)
		if r == nil {
			return nil, nil
		}
		if r.Arity != len(a.Terms) {
			return nil, qerr.Tag(qerr.ErrBadInstance, fmt.Errorf("rel: atom %s arity mismatch with relation (arity %d)", a, r.Arity))
		}
	}
	for _, a := range q.Atoms {
		if db.Relation(a.Pred).Len() == 0 {
			return nil, nil
		}
		for _, t := range a.Terms {
			if !t.IsVar {
				if _, ok := db.Dict().Code(t.Const); !ok {
					return nil, nil
				}
			}
		}
	}
	p := &plan{db: db, numAtoms: len(q.Atoms)}
	slotOf := make(map[string]int)
	chosen := make([]bool, len(q.Atoms))
	for range q.Atoms {
		ai := nextAtom(db, q, chosen, slotOf)
		chosen[ai] = true
		a := q.Atoms[ai]
		st := step{atom: ai, rl: db.Relation(a.Pred)}
		firstCol := make(map[string]int)
		for c, t := range a.Terms {
			if !t.IsVar {
				code, _ := db.Dict().Code(t.Const)
				st.consts = append(st.consts, colCode{col: c, code: code})
				continue
			}
			if fc, ok := firstCol[t.Var]; ok {
				// Repeated variable within the atom: an intra-row
				// equality against its first column covers it whether
				// that column is a join or a bind.
				st.eq = append(st.eq, [2]int{fc, c})
				continue
			}
			firstCol[t.Var] = c
			if s, ok := slotOf[t.Var]; ok {
				st.join = append(st.join, colSlot{col: c, slot: s})
				continue
			}
			s := len(p.varNames)
			slotOf[t.Var] = s
			p.varNames = append(p.varNames, t.Var)
			st.bind = append(st.bind, colSlot{col: c, slot: s})
		}
		p.steps = append(p.steps, st)
	}
	return p, nil
}

// nextAtom greedily picks the most selective remaining atom. An atom
// that joins on an already-bound variable always outranks one that
// doesn't — an unconnected atom is a cartesian arm that multiplies the
// pipeline by its match count, no matter how selective its constants
// are. Within each class: most constant terms, then most distinct
// already-bound variables, then smallest relation, ties broken by
// lowest atom index.
func nextAtom(db *rel.Database, q *rel.Query, chosen []bool, slotOf map[string]int) int {
	best := -1
	var bestJoins bool
	var bestConsts, bestShared, bestCard int
	for i, a := range q.Atoms {
		if chosen[i] {
			continue
		}
		nConsts, nShared := 0, 0
		seen := make(map[string]bool)
		for _, t := range a.Terms {
			if !t.IsVar {
				nConsts++
			} else if _, ok := slotOf[t.Var]; ok && !seen[t.Var] {
				seen[t.Var] = true
				nShared++
			}
		}
		joins := nShared > 0
		card := db.Relation(a.Pred).Len()
		better := best < 0 ||
			(joins && !bestJoins) ||
			(joins == bestJoins &&
				(nConsts > bestConsts ||
					(nConsts == bestConsts && nShared > bestShared) ||
					(nConsts == bestConsts && nShared == bestShared && card < bestCard)))
		if better {
			best, bestJoins, bestConsts, bestShared, bestCard = i, joins, nConsts, nShared, card
		}
	}
	return best
}
