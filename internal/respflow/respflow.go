// Package respflow implements Algorithm 1 of Meliou et al. (VLDB 2010):
// computing the Why-So responsibility of an endogenous tuple for a
// linear (or weakly linear) conjunctive query by reduction to
// max-flow/min-cut (Example 4.2, Theorem 4.5).
//
// # Construction
//
// Given a Boolean query q whose (possibly weakened) shape is linear with
// atom order g₁ … g_m, the flow network has one layer of nodes per
// interface Sᵢ = Var(gᵢ) ∩ Var(gᵢ₊₁) between consecutive atoms (S₀ and
// S_m are empty: single source/target nodes). Every valuation θ of q
// contributes, at each position i, an edge from θ's projection on Sᵢ₋₁
// to its projection on Sᵢ. Because every variable spans a consecutive
// atom range, agreement on consecutive interfaces stitches path edges
// into a consistent valuation, so s-t paths correspond exactly to
// valuations and finite cuts to tuple sets falsifying the query.
//
// Edges are per-tuple for endogenous tuples of endogenous atoms
// (capacity 1) and merged with capacity ∞ for exogenous tuples and for
// atoms made exogenous by weakening. Dissociated relations are never
// materialized: a dissociated exogenous atom contributes the same
// ∞-capacity interface edges either way (the weakening does not change
// the set of valuations restricted to the original variables).
//
// The responsibility of t is 1/(1+min|Γ|) where the minimum is over the
// valuations ("paths p") through t: the path's other edges are set to ∞
// (they must survive), t's edge to 0 (t is put back last), and |Γ| is
// the min-cut value. If every protected path yields an infinite cut, t
// is not an actual cause (its conjuncts are all redundant) and ρ_t = 0,
// matching Theorem 3.2.
package respflow

import (
	"fmt"
	"sort"
	"strings"

	"github.com/querycause/querycause/internal/flow"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/shape"
)

// Network is the flow network built from a linearized query and a
// database, reusable across target tuples.
type Network struct {
	g      *flow.Graph
	source int
	target int
	// edgeByTuple maps an endogenous tuple to its edges. A tuple of an
	// endogenous atom has exactly one edge (its interface projections are
	// determined by the tuple, since weakening never adds variables to
	// endogenous atoms). An endogenous tuple whose atom was weakened to
	// exogenous and dissociated stands for several "virtual" tuples —
	// one edge per assignment of the dissociated variables.
	edgeByTuple map[rel.TupleID][]*flow.Edge
	// defaultCap is each endogenous tuple's resting capacity: 1 for
	// tuples of endogenous atoms, ∞ for endogenous tuples whose atom was
	// weakened to exogenous (sound domination guarantees minimum
	// contingencies never need them, but they may still be the target).
	defaultCap map[rel.TupleID]int64
	// protectSets lists, per endogenous tuple, the deduplicated sets of
	// endogenous tuples co-occurring with it in a valuation (the path
	// edges that must be protected).
	protectSets map[rel.TupleID][][]rel.TupleID
}

// Build constructs the network for Boolean query q over db, using the
// weakened shape ws (atom i of ws corresponds to q.Atoms[i]) and the
// linear atom order. ws must come from shape.FromQuery(q, …) possibly
// weakened, so that ws.VarNames maps shape variable ids to q's variable
// names.
func Build(db *rel.Database, q *rel.Query, ws *shape.Shape, order []int) (*Network, error) {
	if len(ws.Atoms) != len(q.Atoms) {
		return nil, fmt.Errorf("respflow: shape has %d atoms, query has %d", len(ws.Atoms), len(q.Atoms))
	}
	if len(order) != len(q.Atoms) {
		return nil, fmt.Errorf("respflow: order has %d entries, query has %d atoms", len(order), len(q.Atoms))
	}
	seen := make([]bool, len(order))
	for _, a := range order {
		if a < 0 || a >= len(order) || seen[a] {
			return nil, fmt.Errorf("respflow: invalid atom order %v", order)
		}
		seen[a] = true
	}
	if err := checkConsecutive(ws, order); err != nil {
		return nil, err
	}
	vals, err := rel.Valuations(db, q)
	if err != nil {
		return nil, err
	}
	m := len(order)
	// Interface variable name lists: ifaceVars[i] is between position
	// i-1 and i (0 and m are empty).
	ifaceVars := make([][]string, m+1)
	for i := 1; i < m; i++ {
		prev, cur := ws.Atoms[order[i-1]], ws.Atoms[order[i]]
		var names []string
		for _, v := range prev.Vars {
			if cur.HasVar(v) {
				names = append(names, shapeVarName(ws, v))
			}
		}
		sort.Strings(names)
		ifaceVars[i] = names
	}

	n := &Network{
		g:           flow.NewGraph(2),
		source:      0,
		target:      1,
		edgeByTuple: make(map[rel.TupleID][]*flow.Edge),
		defaultCap:  make(map[rel.TupleID]int64),
		protectSets: make(map[rel.TupleID][][]rel.TupleID),
	}
	nodeIDs := make(map[string]int)
	nodeAt := func(layer int, key string) int {
		if layer == 0 {
			return n.source
		}
		if layer == m {
			return n.target
		}
		k := fmt.Sprintf("%d|%s", layer, key)
		id, ok := nodeIDs[k]
		if !ok {
			id = n.g.AddVertex()
			nodeIDs[k] = id
		}
		return id
	}
	infEdges := make(map[string]bool)
	protDedup := make(map[rel.TupleID]map[string]bool)

	for _, val := range vals {
		var endoOnPath []rel.TupleID
		for pos := 0; pos < m; pos++ {
			ai := order[pos]
			tup := db.Tuple(val.Witness[ai])
			left := nodeAt(pos, project(val.Binding, ifaceVars[pos]))
			right := nodeAt(pos+1, project(val.Binding, ifaceVars[pos+1]))
			if tup.Endo {
				endoOnPath = append(endoOnPath, tup.ID)
				cap_ := int64(1)
				if !ws.Atoms[ai].Endo {
					cap_ = flow.Inf
				}
				// Dedupe per (tuple, endpoints): a tuple of an endogenous
				// atom always projects to the same endpoints; a tuple of a
				// dissociated atom gets one virtual edge per distinct
				// endpoint pair.
				k := fmt.Sprintf("t%d|%d|%d", tup.ID, left, right)
				if !infEdges[k] {
					infEdges[k] = true
					e, err := n.g.AddEdge(left, right, cap_, tup.ID)
					if err != nil {
						return nil, err
					}
					n.edgeByTuple[tup.ID] = append(n.edgeByTuple[tup.ID], e)
					n.defaultCap[tup.ID] = cap_
				}
			} else {
				k := fmt.Sprintf("x%d|%d|%d", pos, left, right)
				if !infEdges[k] {
					infEdges[k] = true
					if _, err := n.g.AddEdge(left, right, flow.Inf, nil); err != nil {
						return nil, err
					}
				}
			}
		}
		// Record this valuation's endogenous tuple set as a protect-set
		// for each of its endogenous tuples.
		set := append([]rel.TupleID(nil), endoOnPath...)
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		key := tupleSetKey(set)
		for _, id := range set {
			if protDedup[id] == nil {
				protDedup[id] = make(map[string]bool)
			}
			if !protDedup[id][key] {
				protDedup[id][key] = true
				n.protectSets[id] = append(n.protectSets[id], set)
			}
		}
	}
	return n, nil
}

func shapeVarName(ws *shape.Shape, v int) string {
	if v < len(ws.VarNames) && ws.VarNames[v] != "" {
		return ws.VarNames[v]
	}
	return fmt.Sprintf("v%d", v)
}

func project(binding map[string]rel.Value, vars []string) string {
	if len(vars) == 0 {
		return ""
	}
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = string(binding[v])
	}
	return strings.Join(parts, "\x00")
}

func tupleSetKey(set []rel.TupleID) string {
	var b strings.Builder
	for _, id := range set {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String()
}

// checkConsecutive validates that each variable's atoms form a
// consecutive run in the order — the precondition for path/valuation
// correspondence.
func checkConsecutive(ws *shape.Shape, order []int) error {
	pos := make([]int, len(order))
	for p, a := range order {
		pos[a] = p
	}
	for _, v := range ws.UsedVars() {
		lo, hi, count := len(order), -1, 0
		for i, a := range ws.Atoms {
			if a.HasVar(v) {
				count++
				if pos[i] < lo {
					lo = pos[i]
				}
				if pos[i] > hi {
					hi = pos[i]
				}
			}
		}
		if count > 0 && hi-lo+1 != count {
			return fmt.Errorf("respflow: variable %s not consecutive in order %v", shapeVarName(ws, v), order)
		}
	}
	return nil
}

// Clone returns an independently mutable copy of the network for use
// by a concurrent worker: MinContingency and Contingency temporarily
// rewrite edge capacities, so a Network must never be shared between
// goroutines, but clones of one base network may run in parallel. The
// graph and the per-tuple edge handles are deep-copied; protectSets and
// defaultCap are immutable after Build and are shared. Clones preserve
// edge order, so a clone's answers are identical to the original's.
func (n *Network) Clone() *Network {
	g, remap := n.g.Clone()
	ebt := make(map[rel.TupleID][]*flow.Edge, len(n.edgeByTuple))
	for id, es := range n.edgeByTuple {
		cp := make([]*flow.Edge, len(es))
		for i, e := range es {
			cp[i] = remap[e]
		}
		ebt[id] = cp
	}
	return &Network{
		g:           g,
		source:      n.source,
		target:      n.target,
		edgeByTuple: ebt,
		defaultCap:  n.defaultCap,
		protectSets: n.protectSets,
	}
}

// Reset returns the network to its post-Build resting state: every
// tuple edge back to its default capacity and all residual flow
// cleared. A Reset network answers exactly like a fresh Clone, so
// ranking workers can park a network between rankings and reuse it
// instead of cloning per call (see core's network pool).
func (n *Network) Reset() {
	for id, es := range n.edgeByTuple {
		for _, e := range es {
			n.g.SetCap(e, n.defaultCap[id])
		}
	}
	n.g.Reset()
}

// MinContingency computes the minimum contingency size for tuple t.
// ok=false means t is not an actual cause (no finite protected cut, or t
// on no valuation).
func (n *Network) MinContingency(t rel.TupleID) (int, bool) {
	tEdges := n.edgeByTuple[t]
	if len(tEdges) == 0 {
		return 0, false
	}
	sets := n.protectSets[t]
	best := int64(-1)
	for _, set := range sets {
		// Protect: all endo edges of the valuation become ∞; t becomes 0
		// (removing a tuple removes all its virtual edges, so all of
		// them are free to cut).
		for _, id := range set {
			for _, e := range n.edgeByTuple[id] {
				n.g.SetCap(e, flow.Inf)
			}
		}
		for _, e := range tEdges {
			n.g.SetCap(e, 0)
		}
		v := n.g.MaxFlow(n.source, n.target)
		// Restore.
		for _, id := range set {
			for _, e := range n.edgeByTuple[id] {
				n.g.SetCap(e, n.defaultCap[id])
			}
		}
		for _, e := range tEdges {
			n.g.SetCap(e, n.defaultCap[t])
		}
		if v >= flow.InfThreshold {
			continue
		}
		if best < 0 || v < best {
			best = v
		}
		if best == 0 {
			break
		}
	}
	if best < 0 {
		return 0, false
	}
	return int(best), true
}

// Responsibility computes ρ_t = 1/(1+min|Γ|), or 0 if t is not a cause.
func (n *Network) Responsibility(t rel.TupleID) float64 {
	size, ok := n.MinContingency(t)
	if !ok {
		return 0
	}
	return 1 / (1 + float64(size))
}

// Contingency returns an actual minimum contingency set for t (sorted
// tuple IDs): the tuples of a minimum protected cut. ok=false means t
// is not an actual cause.
func (n *Network) Contingency(t rel.TupleID) ([]rel.TupleID, bool) {
	tEdges := n.edgeByTuple[t]
	if len(tEdges) == 0 {
		return nil, false
	}
	best := int64(-1)
	var bestSet []rel.TupleID
	for _, set := range n.protectSets[t] {
		for _, id := range set {
			for _, e := range n.edgeByTuple[id] {
				n.g.SetCap(e, flow.Inf)
			}
		}
		for _, e := range tEdges {
			n.g.SetCap(e, 0)
		}
		v, cut := n.g.MinCut(n.source, n.target)
		for _, id := range set {
			for _, e := range n.edgeByTuple[id] {
				n.g.SetCap(e, n.defaultCap[id])
			}
		}
		for _, e := range tEdges {
			n.g.SetCap(e, n.defaultCap[t])
		}
		if v >= flow.InfThreshold {
			continue
		}
		if best < 0 || v < best {
			best = v
			ids := make(map[rel.TupleID]bool)
			for _, e := range cut {
				if id, ok := e.Payload.(rel.TupleID); ok {
					ids[id] = true
				}
			}
			bestSet = bestSet[:0]
			for id := range ids {
				bestSet = append(bestSet, id)
			}
		}
		if best == 0 {
			break
		}
	}
	if best < 0 {
		return nil, false
	}
	sort.Slice(bestSet, func(i, j int) bool { return bestSet[i] < bestSet[j] })
	return bestSet, true
}

// Stats reports the network size (for tests and experiment output).
func (n *Network) Stats() (vertices, tupleEdges int) {
	return n.g.N, len(n.edgeByTuple)
}
