package respflow

import (
	"math/rand"
	"testing"

	"github.com/querycause/querycause/internal/exact"
	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/rewrite"
	"github.com/querycause/querycause/internal/shape"
)

// endoByRelation returns the shape flag function: a relation is
// endogenous if any of its tuples is.
func endoByRelation(db *rel.Database) func(string) bool {
	return func(name string) bool {
		r := db.Relation(name)
		if r == nil {
			return false
		}
		for _, t := range r.Tuples() {
			if t.Endo {
				return true
			}
		}
		return false
	}
}

// buildNet classifies q under the sound rule and builds the network from
// the certificate.
func buildNet(t *testing.T, db *rel.Database, q *rel.Query) *Network {
	t.Helper()
	s := shape.FromQuery(q, endoByRelation(db))
	cert, err := rewrite.ClassifySound(s)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Class.PTime() {
		t.Fatalf("query %v classified %v; flow inapplicable", q, cert.Class)
	}
	ws, order, err := cert.Replay()
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(db, q, ws, order)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// checkAgainstBruteForce compares flow results with the subset oracle
// for every endogenous tuple.
func checkAgainstBruteForce(t *testing.T, db *rel.Database, q *rel.Query) {
	t.Helper()
	net := buildNet(t, db, q)
	n, err := lineage.NLineageOf(db, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range db.EndoIDs() {
		got, gotOK := net.MinContingency(id)
		want, wantOK := exact.BruteForceMinContingency(n, id)
		if n.True {
			wantOK = false
		}
		if gotOK != wantOK || (gotOK && got != want) {
			t.Errorf("tuple %v: flow=(%d,%v) brute=(%d,%v)\nquery %v\ndb:\n%v",
				db.Tuple(id), got, gotOK, want, wantOK, q, db)
		}
	}
}

// TestFig4Construction reproduces Example 4.2 / Figure 4: the flow
// network for q :- R(x,y),S(y,z) with both relations endogenous.
func TestFig4Construction(t *testing.T) {
	db := rel.NewDatabase()
	// R: x1 joins y2; x2,x3 join y1; S: y2 reaches z1,z2; y1 reaches z1.
	rx1 := db.MustAdd("R", true, "x1", "y2")
	db.MustAdd("R", true, "x2", "y1")
	db.MustAdd("R", true, "x3", "y1")
	db.MustAdd("S", true, "y2", "z1")
	db.MustAdd("S", true, "y2", "z2")
	db.MustAdd("S", true, "y1", "z1")
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
	)
	net := buildNet(t, db, q)
	_, tupleEdges := net.Stats()
	if tupleEdges != 6 {
		t.Errorf("tuple edges = %d, want 6", tupleEdges)
	}
	// t = R(x1,y2): protecting either of its two paths forces cutting
	// S(y2,z2) resp. S(y2,z1) — both size 1... actually protecting path
	// (x1,y2,z1) leaves S(y2,z2) to cut plus the y1 side must die:
	// R(x2,y1),R(x3,y1) or S(y1,z1). Min over paths computed below must
	// match brute force; also sanity-check the value.
	size, ok := net.MinContingency(rx1)
	if !ok {
		t.Fatal("R(x1,y2) must be a cause")
	}
	n, _ := lineage.NLineageOf(db, q)
	want, _ := exact.BruteForceMinContingency(n, rx1)
	if size != want {
		t.Errorf("min contingency = %d, want %d", size, want)
	}
	checkAgainstBruteForce(t, db, q)
}

// TestExample2_2Answer4 checks q[a4] :- R(a4,y),S(y) responsibilities:
// both S(a3) and S(a2) have ρ = 1/2 (contingency = the other S tuple),
// and the R tuples similarly.
func TestExample2_2Answer4(t *testing.T) {
	db := rel.NewDatabase()
	for _, row := range [][2]rel.Value{{"a1", "a5"}, {"a2", "a1"}, {"a3", "a3"}, {"a4", "a3"}, {"a4", "a2"}} {
		db.MustAdd("R", true, row[0], row[1])
	}
	sIDs := make(map[rel.Value]rel.TupleID)
	for _, v := range []rel.Value{"a1", "a2", "a3", "a4", "a6"} {
		sIDs[v] = db.MustAdd("S", true, v)
	}
	q := rel.NewBoolean(rel.NewAtom("R", rel.C("a4"), rel.V("y")), rel.NewAtom("S", rel.V("y")))
	net := buildNet(t, db, q)
	if rho := net.Responsibility(sIDs["a3"]); rho != 0.5 {
		t.Errorf("ρ(S(a3)) = %v, want 0.5", rho)
	}
	if rho := net.Responsibility(sIDs["a1"]); rho != 0 {
		t.Errorf("ρ(S(a1)) = %v, want 0 (not in lineage of a4)", rho)
	}
	checkAgainstBruteForce(t, db, q)
}

// TestCounterfactualViaFlow: a single-valuation query makes every tuple
// on it counterfactual (ρ = 1).
func TestCounterfactualViaFlow(t *testing.T) {
	db := rel.NewDatabase()
	r := db.MustAdd("R", true, "a", "b")
	s := db.MustAdd("S", true, "b", "c")
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
	)
	net := buildNet(t, db, q)
	for _, id := range []rel.TupleID{r, s} {
		if rho := net.Responsibility(id); rho != 1 {
			t.Errorf("ρ(%v) = %v, want 1", db.Tuple(id), rho)
		}
	}
}

// TestRedundantTupleNotACause rebuilds Example 3.3 and checks the flow
// algorithm agrees that R(a3,a3) has ρ = 0 when R(a4,a3) is exogenous
// (its only conjunct is redundant).
func TestRedundantTupleNotACause(t *testing.T) {
	db := rel.NewDatabase()
	ra33 := db.MustAdd("R", true, "a3", "a3")
	db.MustAdd("R", false, "a4", "a3")
	sa3 := db.MustAdd("S", true, "a3")
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.C("a3")), rel.NewAtom("S", rel.C("a3")))
	net := buildNet(t, db, q)
	if rho := net.Responsibility(ra33); rho != 0 {
		t.Errorf("ρ(R(a3,a3)) = %v, want 0 (redundant conjunct)", rho)
	}
	if rho := net.Responsibility(sa3); rho != 1 {
		t.Errorf("ρ(S(a3)) = %v, want 1 (counterfactual)", rho)
	}
}

// TestDissociationWeakenedQuery exercises Example 4.12a:
// Rⁿ(x,y), Sˣ(y,z), Tⁿ(z,x) is weakly linear by dissociating S; flow
// results must match brute force on random instances.
func TestDissociationWeakenedQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z"), rel.V("x")),
	)
	for trial := 0; trial < 40; trial++ {
		db := rel.NewDatabase()
		dom := []rel.Value{"0", "1", "2"}
		for i := 0; i < 6; i++ {
			db.MustAdd("R", true, dom[rng.Intn(3)], dom[rng.Intn(3)])
		}
		for i := 0; i < 6; i++ {
			db.MustAdd("S", false, dom[rng.Intn(3)], dom[rng.Intn(3)])
		}
		for i := 0; i < 6; i++ {
			db.MustAdd("T", true, dom[rng.Intn(3)], dom[rng.Intn(3)])
		}
		ok, err := rel.Holds(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		checkAgainstBruteForce(t, db, q)
	}
}

// TestChainQueryRandom fuzzes the three-atom chain R(x,y),S(y,z),T(z,w)
// with mixed endogenous/exogenous tuples inside each relation.
func TestChainQueryRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z"), rel.V("w")),
	)
	for trial := 0; trial < 40; trial++ {
		db := rel.NewDatabase()
		dom := []rel.Value{"0", "1", "2"}
		for _, relName := range []string{"R", "S", "T"} {
			for i := 0; i < 5; i++ {
				db.MustAdd(relName, rng.Intn(4) != 0, dom[rng.Intn(3)], dom[rng.Intn(3)])
			}
		}
		ok, err := rel.Holds(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		checkAgainstBruteForce(t, db, q)
	}
}

// TestResetMatchesFreshClone: after arbitrary Contingency
// computations (which temporarily rewrite capacities), Reset must
// return a network to a state answering byte-identically to a fresh
// clone — the invariant the engine's network pool relies on.
func TestResetMatchesFreshClone(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
	)
	for trial := 0; trial < 20; trial++ {
		db := rel.NewDatabase()
		dom := []rel.Value{"0", "1", "2"}
		for _, relName := range []string{"R", "S"} {
			for i := 0; i < 6; i++ {
				db.MustAdd(relName, rng.Intn(4) != 0, dom[rng.Intn(3)], dom[rng.Intn(3)])
			}
		}
		if ok, err := rel.Holds(db, q); err != nil || !ok {
			continue
		}
		base := buildNet(t, db, q)
		reused := base.Clone()
		// Churn the reused network, Reset, and compare every answer to
		// a pristine clone.
		for _, tp := range db.Tuples() {
			if tp.Endo {
				reused.Contingency(tp.ID)
			}
		}
		reused.Reset()
		fresh := base.Clone()
		for _, tp := range db.Tuples() {
			if !tp.Endo {
				continue
			}
			gotSet, gotOK := reused.Contingency(tp.ID)
			wantSet, wantOK := fresh.Contingency(tp.ID)
			if gotOK != wantOK || len(gotSet) != len(wantSet) {
				t.Fatalf("trial %d tuple %d: reset=(%v,%v) fresh=(%v,%v)", trial, tp.ID, gotSet, gotOK, wantSet, wantOK)
			}
			for i := range gotSet {
				if gotSet[i] != wantSet[i] {
					t.Fatalf("trial %d tuple %d: reset set %v ≠ fresh %v", trial, tp.ID, gotSet, wantSet)
				}
			}
		}
	}
}

// TestSingleAtomQuery: q :- R('a',y); the minimum contingency for
// R(a,b) is all other matching tuples.
func TestSingleAtomQuery(t *testing.T) {
	db := rel.NewDatabase()
	rab := db.MustAdd("R", true, "a", "b")
	db.MustAdd("R", true, "a", "c")
	db.MustAdd("R", true, "a", "d")
	db.MustAdd("R", true, "z", "q") // does not match
	q := rel.NewBoolean(rel.NewAtom("R", rel.C("a"), rel.V("y")))
	net := buildNet(t, db, q)
	size, ok := net.MinContingency(rab)
	if !ok || size != 2 {
		t.Fatalf("size=%d ok=%v, want 2 (remove the two other matching tuples)", size, ok)
	}
}

func TestBuildValidation(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", true, "a", "b")
	db.MustAdd("S", true, "b", "c")
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
	)
	s := shape.FromQuery(q, endoByRelation(db))
	if _, err := Build(db, q, s, []int{0}); err == nil {
		t.Error("expected order-length error")
	}
	if _, err := Build(db, q, s, []int{0, 0}); err == nil {
		t.Error("expected duplicate-order error")
	}
	// Non-consecutive order for a triangle shape must error.
	q3 := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z"), rel.V("x")),
	)
	db.MustAdd("T", true, "c", "a")
	s3 := shape.FromQuery(q3, endoByRelation(db))
	if _, err := Build(db, q3, s3, []int{0, 1, 2}); err == nil {
		t.Error("expected consecutiveness error for triangle")
	}
	// Shape/atom count mismatch.
	if _, err := Build(db, q3, s, []int{0, 1}); err == nil {
		t.Error("expected atom-count mismatch error")
	}
}

// TestMixedEndoExoWithinRelation: exogenous tuples inside an endogenous
// relation act as uncuttable edges.
func TestMixedEndoExoWithinRelation(t *testing.T) {
	db := rel.NewDatabase()
	ra := db.MustAdd("R", true, "a", "b")
	db.MustAdd("R", false, "a2", "b") // exogenous alternative
	db.MustAdd("S", true, "b", "c")
	sbc := rel.TupleID(2)
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
	)
	net := buildNet(t, db, q)
	// R(a,b)'s conjunct {R(a,b),S(b,c)} is redundant? No: the other
	// conjunct is {S(b,c)} (R(a2,b) exogenous) which is a strict subset,
	// so R(a,b) is NOT a cause.
	if rho := net.Responsibility(ra); rho != 0 {
		t.Errorf("ρ(R(a,b)) = %v, want 0", rho)
	}
	// S(b,c) is counterfactual.
	if rho := net.Responsibility(sbc); rho != 1 {
		t.Errorf("ρ(S(b,c)) = %v, want 1", rho)
	}
	checkAgainstBruteForce(t, db, q)
}
