package reductions

import (
	"fmt"

	"github.com/querycause/querycause/internal/rel"
)

// H2ToH3 implements the Fig. 9 reduction used to prove h₃* hard
// (Theorem 4.1): given an instance of
// h₂* :- Rⁿ(x,y), Sⁿ(y,z), Tⁿ(z,x), it builds an instance of
// h₃* :- A′ⁿ(x′), B′ⁿ(y′), C′ⁿ(z′), R′(x′,y′), S′(y′,z′), T′(z′,x′)
// with one A′/B′/C′ tuple per R/S/T tuple and one primed triangle per
// valuation of h₂*. The R′,S′,T′ tuples are dominated by the unary
// atoms, so causes and responsibilities transfer along the returned
// tuple mapping.
func H2ToH3(db *rel.Database) (*rel.Database, map[rel.TupleID]rel.TupleID, error) {
	out := rel.NewDatabase()
	mapping := make(map[rel.TupleID]rel.TupleID)
	unaryOf := map[string]string{"R": "A", "S": "B", "T": "C"}
	valOf := func(id rel.TupleID) rel.Value { return rel.Value(fmt.Sprintf("t%d", id)) }
	for _, name := range []string{"R", "S", "T"} {
		r := db.Relation(name)
		if r == nil {
			return nil, nil, fmt.Errorf("reductions: h2 instance missing relation %s", name)
		}
		for _, tup := range r.Tuples() {
			nid := out.MustAdd(unaryOf[name], tup.Endo, valOf(tup.ID))
			mapping[tup.ID] = nid
		}
	}
	q2 := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z"), rel.V("x")),
	)
	vals, err := rel.Valuations(db, q2)
	if err != nil {
		return nil, nil, err
	}
	seen := make(map[string]bool)
	addOnce := func(relName string, a, b rel.Value) {
		k := relName + string(a) + "|" + string(b)
		if !seen[k] {
			seen[k] = true
			out.MustAdd(relName, true, a, b)
		}
	}
	for _, v := range vals {
		ri, si, ti := v.Witness[0], v.Witness[1], v.Witness[2]
		addOnce("Rp", valOf(ri), valOf(si))
		addOnce("Sp", valOf(si), valOf(ti))
		addOnce("Tp", valOf(ti), valOf(ri))
	}
	return out, mapping, nil
}

// H3Query returns the h₃* query over the transformed schema.
func H3Query() *rel.Query {
	return rel.NewBoolean(
		rel.NewAtom("A", rel.V("x")),
		rel.NewAtom("B", rel.V("y")),
		rel.NewAtom("C", rel.V("z")),
		rel.NewAtom("Rp", rel.V("x"), rel.V("y")),
		rel.NewAtom("Sp", rel.V("y"), rel.V("z")),
		rel.NewAtom("Tp", rel.V("z"), rel.V("x")),
	)
}

// H2Query returns h₂*.
func H2Query() *rel.Query {
	return rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z"), rel.V("x")),
	)
}
