package reductions

import (
	"fmt"
	"math/rand"

	"github.com/querycause/querycause/internal/rel"
)

// Literal is a possibly negated propositional variable.
type Literal struct {
	Var int
	Neg bool
}

// Clause is a disjunction of three literals over three distinct
// variables (the form the local-ring construction of Theorem 4.1
// requires).
type Clause [3]Literal

// Formula is a 3CNF formula.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate checks variable ranges and per-clause variable distinctness.
func (f *Formula) Validate() error {
	for ci, c := range f.Clauses {
		seen := map[int]bool{}
		for _, l := range c {
			if l.Var < 0 || l.Var >= f.NumVars {
				return fmt.Errorf("reductions: clause %d: variable %d out of range", ci, l.Var)
			}
			if seen[l.Var] {
				return fmt.Errorf("reductions: clause %d uses a variable twice (the ring construction needs distinct variables)", ci)
			}
			seen[l.Var] = true
		}
	}
	return nil
}

// Satisfiable brute-forces the formula (NumVars ≤ 24) and returns a
// satisfying assignment when one exists.
func (f *Formula) Satisfiable() (bool, []bool) {
	if f.NumVars > 24 {
		panic("reductions: brute-force SAT limited to 24 variables")
	}
	assign := make([]bool, f.NumVars)
	for mask := 0; mask < 1<<f.NumVars; mask++ {
		for i := range assign {
			assign[i] = mask&(1<<i) != 0
		}
		if f.Evaluate(assign) {
			return true, assign
		}
	}
	return false, nil
}

// Evaluate reports whether the assignment satisfies the formula.
func (f *Formula) Evaluate(assign []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if assign[l.Var] != l.Neg {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// RandomFormula samples a 3CNF formula with distinct variables per
// clause.
func RandomFormula(rng *rand.Rand, nVars, nClauses int) Formula {
	f := Formula{NumVars: nVars}
	for c := 0; c < nClauses; c++ {
		perm := rng.Perm(nVars)
		var cl Clause
		for k := 0; k < 3; k++ {
			cl[k] = Literal{Var: perm[k], Neg: rng.Intn(2) == 0}
		}
		f.Clauses = append(f.Clauses, cl)
	}
	return f
}

// RingInstance is the Theorem 4.1 / Lemmas C.1–C.3 reduction from 3SAT
// to responsibility for h₂* :- Rⁿ(x,y), Sⁿ(y,z), Tⁿ(z,x): one "local
// ring" per variable, a triangle per clause (via node collapsing), and
// a fresh protected triangle carrying the target tuple.
//
// The formula is satisfiable iff the target's minimum contingency
// equals SumMi = Σ mᵢ (Lemma C.3): each ring needs at least mᵢ edges,
// and exactly mᵢ only via one of its two all-forward contingencies S⁺ᵢ
// (≙ Xᵢ=true) or S⁻ᵢ (≙ Xᵢ=false), which covers a clause triangle iff
// the corresponding literal is satisfied.
type RingInstance struct {
	DB *rel.Database
	Q  *rel.Query
	// Target is R(a₀,b₀) on the fresh protected triangle.
	Target rel.TupleID
	// SumMi is Σ mᵢ, the candidate minimum contingency size.
	SumMi int
	// RingLen maps each (occurring) variable to its ring length mᵢ.
	RingLen map[int]int
	// SPlus and SMinus list, per variable, the tuple IDs of the two
	// canonical ring contingencies.
	SPlus, SMinus map[int][]rel.TupleID
}

// ringNodes identifies ring nodes up to the clause-gadget collapsing.
type ringNodes struct {
	parent map[string]string
}

func (u *ringNodes) find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		return x
	}
	r := u.find(p)
	u.parent[x] = r
	return r
}

func (u *ringNodes) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// BuildRings constructs the instance for a validated formula. Ring
// lengths are the smallest odd multiples of 3 with mᵢ ≥ 9·occ(Xᵢ)
// (odd so that the forward edges form a single 2mᵢ-cycle, Lemma C.2;
// 9 positions per clause occurrence keep clause gadgets buffered).
func BuildRings(f Formula) (*RingInstance, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	occ := make(map[int]int)
	for _, c := range f.Clauses {
		for _, l := range c {
			occ[l.Var]++
		}
	}
	ringLen := make(map[int]int)
	sum := 0
	for v, o := range occ {
		m := 9 * o
		for m%2 == 0 { // smallest odd multiple of 3 ≥ 9·occ
			m += 3
		}
		ringLen[v] = m
		sum += m
	}

	node := func(v int, plus bool, j int) string {
		sign := "-"
		if plus {
			sign = "+"
		}
		return fmt.Sprintf("X%d%s%d", v, sign, j)
	}
	uf := &ringNodes{parent: make(map[string]string)}

	// Clause gadgets: the k-th literal of a clause maps to a forward
	// edge in positions j+k-1 → j+k of its variable's ring, where j is
	// the start of the clause's 9-wide portion; the three edges are
	// collapsed into a triangle (Fig. 8).
	type litEdge struct {
		from, to string
	}
	occSeen := make(map[int]int)
	for _, c := range f.Clauses {
		var edges [3]litEdge
		for k := 0; k < 3; k++ {
			l := c[k]
			occSeen[l.Var]++
			j := 9*(occSeen[l.Var]-1) + 1
			pos, next := j+k, j+k+1
			if l.Neg {
				edges[k] = litEdge{node(l.Var, false, pos), node(l.Var, true, next)}
			} else {
				edges[k] = litEdge{node(l.Var, true, pos), node(l.Var, false, next)}
			}
		}
		// a1 ≡ a3, b1 ≡ b2, c2 ≡ c3.
		uf.union(edges[0].from, edges[2].to)
		uf.union(edges[0].to, edges[1].from)
		uf.union(edges[1].to, edges[2].from)
	}

	db := rel.NewDatabase()
	inst := &RingInstance{
		DB: db, SumMi: sum, RingLen: ringLen,
		SPlus: make(map[int][]rel.TupleID), SMinus: make(map[int][]rel.TupleID),
	}
	relOf := func(colorFrom int) string {
		switch colorFrom {
		case 0:
			return "R" // a → b
		case 1:
			return "S" // b → c
		default:
			return "T" // c → a
		}
	}
	color := func(j int) int { return (j - 1) % 3 }
	seenEdge := make(map[string]bool)
	addEdge := func(from, to string, colorFrom int) (rel.TupleID, error) {
		rf, rt := uf.find(from), uf.find(to)
		k := rf + "→" + rt
		if seenEdge[k] {
			return 0, fmt.Errorf("reductions: edge collision %s (ring buffers too small)", k)
		}
		seenEdge[k] = true
		return db.MustAdd(relOf(colorFrom), true, rel.Value(rf), rel.Value(rt)), nil
	}

	ringVars := make([]int, 0, len(ringLen))
	for v := range ringLen {
		ringVars = append(ringVars, v)
	}
	sortInts(ringVars)
	for _, v := range ringVars {
		m := ringLen[v]
		next := func(j int) int { return j%m + 1 }
		// prev2 steps two positions back cyclically. Note: the paper
		// lists the wrap-around backward edges as (v_{m-1}, v_1) and
		// (v_m, v_2), but only the directions 1 → m-1 and 2 → m are
		// color-consistent (a backward edge goes from color k to color
		// k+1 so it can be an R/S/T tuple); we take the color-consistent
		// direction, which is also the one every non-wrap backward edge
		// (v_j, v_{j-2}) uses.
		prev2 := func(j int) int { return (j-3+m)%m + 1 }
		for j := 1; j <= m; j++ {
			// Forward edges.
			idP, err := addEdge(node(v, true, j), node(v, false, next(j)), color(j))
			if err != nil {
				return nil, err
			}
			inst.SPlus[v] = append(inst.SPlus[v], idP)
			idM, err := addEdge(node(v, false, j), node(v, true, next(j)), color(j))
			if err != nil {
				return nil, err
			}
			inst.SMinus[v] = append(inst.SMinus[v], idM)
			// Backward edges (one per sign and position; each closes
			// exactly one triangle with two forward edges).
			if _, err := addEdge(node(v, true, j), node(v, true, prev2(j)), color(j)); err != nil {
				return nil, err
			}
			if _, err := addEdge(node(v, false, j), node(v, false, prev2(j)), color(j)); err != nil {
				return nil, err
			}
		}
	}

	// Fresh protected triangle carrying the target.
	inst.Target = db.MustAdd("R", true, "a0", "b0")
	db.MustAdd("S", true, "b0", "c0")
	db.MustAdd("T", true, "c0", "a0")

	inst.Q = rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z"), rel.V("x")),
	)
	return inst, nil
}

// AssignmentContingency returns the candidate contingency for a truth
// assignment: S⁺ᵢ for true variables, S⁻ᵢ for false ones (variables not
// occurring in the formula have no ring and contribute nothing).
func (ri *RingInstance) AssignmentContingency(assign []bool) []rel.TupleID {
	var out []rel.TupleID
	for v := range ri.RingLen {
		if v < len(assign) && assign[v] {
			out = append(out, ri.SPlus[v]...)
		} else {
			out = append(out, ri.SMinus[v]...)
		}
	}
	return out
}

// ValidContingency verifies by Definition 2.1 that Γ is a contingency
// for the target: q holds on D−Γ and fails on D−Γ−{target}.
func (ri *RingInstance) ValidContingency(gamma []rel.TupleID) (bool, error) {
	removed := make(map[rel.TupleID]bool, len(gamma)+1)
	for _, id := range gamma {
		if id == ri.Target {
			return false, nil
		}
		removed[id] = true
	}
	on, err := rel.HoldsWithout(ri.DB, ri.Q, removed)
	if err != nil || !on {
		return false, err
	}
	removed[ri.Target] = true
	off, err := rel.HoldsWithout(ri.DB, ri.Q, removed)
	if err != nil {
		return false, err
	}
	return !off, nil
}

// SatisfiableViaRings decides the formula by checking, for every
// assignment, whether the canonical ring contingency is valid — the
// executable content of Lemma C.3's forward direction.
func (ri *RingInstance) SatisfiableViaRings(numVars int) (bool, error) {
	assign := make([]bool, numVars)
	for mask := 0; mask < 1<<numVars; mask++ {
		for i := range assign {
			assign[i] = mask&(1<<i) != 0
		}
		ok, err := ri.ValidContingency(ri.AssignmentContingency(assign))
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
