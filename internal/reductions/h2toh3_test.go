package reductions

import (
	"math/rand"
	"testing"

	"github.com/querycause/querycause/internal/exact"
	"github.com/querycause/querycause/internal/rel"
)

// TestH2ToH3ResponsibilitiesIdentical is the executable Fig. 9 claim:
// every R/S/T tuple of an h₂* instance has the same cause status and
// minimum contingency as its unary image in the transformed h₃*
// instance.
func TestH2ToH3ResponsibilitiesIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dom := []rel.Value{"0", "1", "2"}
	for trial := 0; trial < 15; trial++ {
		db := rel.NewDatabase()
		seen := map[string]bool{}
		for _, name := range []string{"R", "S", "T"} {
			for i := 0; i < 4; i++ {
				a, b := dom[rng.Intn(3)], dom[rng.Intn(3)]
				k := name + string(a) + string(b)
				if seen[k] {
					continue
				}
				seen[k] = true
				db.MustAdd(name, true, a, b)
			}
		}
		db3, mapping, err := H2ToH3(db)
		if err != nil {
			t.Fatal(err)
		}
		q2, q3 := H2Query(), H3Query()
		for oldID, newID := range mapping {
			s2, ok2, err := exact.MinContingencyDB(db, q2, oldID)
			if err != nil {
				t.Fatal(err)
			}
			s3, ok3, err := exact.MinContingencyDB(db3, q3, newID)
			if err != nil {
				t.Fatal(err)
			}
			if ok2 != ok3 || (ok2 && s2 != s3) {
				t.Fatalf("trial %d tuple %v: h2=(%d,%v) h3=(%d,%v)\nh2 db:\n%v\nh3 db:\n%v",
					trial, db.Tuple(oldID), s2, ok2, s3, ok3, db, db3)
			}
		}
	}
}

func TestH2ToH3MissingRelation(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", true, "a", "b")
	if _, _, err := H2ToH3(db); err == nil {
		t.Fatal("expected error for missing S,T")
	}
}
