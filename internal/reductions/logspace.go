package reductions

import (
	"fmt"
	"sort"

	"github.com/querycause/querycause/internal/flow"
	"github.com/querycause/querycause/internal/rel"
)

func sortInts(xs []int) { sort.Ints(xs) }

// The Theorem 4.15 chain: UGAP → BGAP → FPMF → responsibility of the
// linear query q :- Rⁿ(x,u1,y), Sⁿ(y,u2,z), Tⁿ(z,u3,w). Undirected
// graph accessibility is LOGSPACE-complete, so Why-So responsibility —
// although PTIME for linear queries — is LOGSPACE-hard and hence not
// expressible by a first-order (SQL) query, unlike causality.

// BGAP is the Bipartite Graph Accessibility Problem instance: nodes
// 0..NX-1 on the X side, 0..NY-1 on the Y side, edges between them, a
// start node A ∈ X and a target node B ∈ Y.
type BGAP struct {
	NX, NY int
	Edges  [][2]int // (x, y) pairs
	A, B   int
}

// UGAPToBGAP encodes graph accessibility a→b into a bipartite instance:
// X = vertices, Y = edges ∪ {c}, with (x, xy) for each incident pair and
// one extra edge (b, c).
func UGAPToBGAP(g *Graph, a, b int) *BGAP {
	out := &BGAP{NX: g.N, NY: len(g.Edges) + 1, A: a, B: len(g.Edges)}
	for ei, e := range g.Edges {
		out.Edges = append(out.Edges, [2]int{e[0], ei}, [2]int{e[1], ei})
	}
	out.Edges = append(out.Edges, [2]int{b, len(g.Edges)})
	return out
}

// HasPath reports whether A reaches B by alternating X/Y steps.
func (b *BGAP) HasPath() bool {
	adjX := make([][]int, b.NX)
	adjY := make([][]int, b.NY)
	for _, e := range b.Edges {
		adjX[e[0]] = append(adjX[e[0]], e[1])
		adjY[e[1]] = append(adjY[e[1]], e[0])
	}
	seenX := make([]bool, b.NX)
	seenY := make([]bool, b.NY)
	stack := [][2]int{{0, b.A}} // (side 0=X / 1=Y, node)
	seenX[b.A] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur[0] == 0 {
			for _, y := range adjX[cur[1]] {
				if y == b.B {
					return true
				}
				if !seenY[y] {
					seenY[y] = true
					stack = append(stack, [2]int{1, y})
				}
			}
		} else {
			for _, x := range adjY[cur[1]] {
				if !seenX[x] {
					seenX[x] = true
					stack = append(stack, [2]int{0, x})
				}
			}
		}
	}
	return false
}

// FPMF is the Four-Partite Max-Flow instance built from a BGAP: unit
// edges U→X and Y→V (one per bipartite edge), capacity-2 edges X→Y, and
// the probe gadget a′ ∈ U, b′ ∈ V. Max flow is |E| when A does not
// reach B and |E|+1 when it does.
type FPMF struct {
	B *BGAP
	// Edge lists; an FPMF edge is (fromPartIdx, toPartIdx, capacity).
	UX [][3]int // (uNode=edge idx or |E| for a′, xNode, cap)
	XY [][3]int // (xNode, yNode, cap=2)
	YV [][3]int // (yNode, vNode=edge idx or |E| for b′, cap)
}

// BGAPToFPMF builds the flow instance.
func BGAPToFPMF(b *BGAP) *FPMF {
	f := &FPMF{B: b}
	for ei, e := range b.Edges {
		f.UX = append(f.UX, [3]int{ei, e[0], 1})
		f.XY = append(f.XY, [3]int{e[0], e[1], 2})
		f.YV = append(f.YV, [3]int{e[1], ei, 1})
	}
	ne := len(b.Edges)
	f.UX = append(f.UX, [3]int{ne, b.A, 1}) // a′ → a
	f.YV = append(f.YV, [3]int{b.B, ne, 1}) // b → b′
	return f
}

// MaxFlow computes the maximum flow of the four-partite network.
func (f *FPMF) MaxFlow() int64 {
	ne := len(f.B.Edges)
	// Vertex layout: 0 source, 1 target, then U (ne+1), X, Y, V (ne+1).
	uBase := 2
	xBase := uBase + ne + 1
	yBase := xBase + f.B.NX
	vBase := yBase + f.B.NY
	g := flow.NewGraph(vBase + ne + 1)
	for u := 0; u <= ne; u++ {
		mustAdd(g, 0, uBase+u, flow.Inf)
		mustAdd(g, vBase+u, 1, flow.Inf)
	}
	for _, e := range f.UX {
		mustAdd(g, uBase+e[0], xBase+e[1], int64(e[2]))
	}
	for _, e := range f.XY {
		mustAdd(g, xBase+e[0], yBase+e[1], int64(e[2]))
	}
	for _, e := range f.YV {
		mustAdd(g, yBase+e[0], vBase+e[1], int64(e[2]))
	}
	return g.MaxFlow(0, 1)
}

func mustAdd(g *flow.Graph, from, to int, c int64) {
	if _, err := g.AddEdge(from, to, c, nil); err != nil {
		panic(err)
	}
}

// ChainInstance is the final step of Theorem 4.15: the FPMF network as
// an instance of q :- Rⁿ(x,u1,y), Sⁿ(y,u2,z), Tⁿ(z,u3,w) with a fresh
// protected chain; the target's minimum contingency equals the max
// flow.
type ChainInstance struct {
	DB     *rel.Database
	Q      *rel.Query
	Target rel.TupleID
}

// ChainQuery returns q :- R(x,u1,y), S(y,u2,z), T(z,u3,w).
func ChainQuery() *rel.Query {
	return rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("u1"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("u2"), rel.V("z")),
		rel.NewAtom("T", rel.V("z"), rel.V("u3"), rel.V("w")),
	)
}

// FPMFToChain encodes the network: capacity-c edges become c parallel
// tuples distinguished by the middle column.
func FPMFToChain(f *FPMF) *ChainInstance {
	db := rel.NewDatabase()
	uv := func(i int) rel.Value { return rel.Value(fmt.Sprintf("u%d", i)) }
	xv := func(i int) rel.Value { return rel.Value(fmt.Sprintf("x%d", i)) }
	yv := func(i int) rel.Value { return rel.Value(fmt.Sprintf("y%d", i)) }
	vv := func(i int) rel.Value { return rel.Value(fmt.Sprintf("v%d", i)) }
	for _, e := range f.UX {
		for c := 1; c <= e[2]; c++ {
			db.MustAdd("R", true, uv(e[0]), rel.Value(fmt.Sprintf("%d", c)), xv(e[1]))
		}
	}
	for _, e := range f.XY {
		for c := 1; c <= e[2]; c++ {
			db.MustAdd("S", true, xv(e[0]), rel.Value(fmt.Sprintf("%d", c)), yv(e[1]))
		}
	}
	for _, e := range f.YV {
		for c := 1; c <= e[2]; c++ {
			db.MustAdd("T", true, yv(e[0]), rel.Value(fmt.Sprintf("%d", c)), vv(e[1]))
		}
	}
	target := db.MustAdd("R", true, "p0", "1", "p1")
	db.MustAdd("S", true, "p1", "1", "p2")
	db.MustAdd("T", true, "p2", "1", "p3")
	return &ChainInstance{DB: db, Q: ChainQuery(), Target: target}
}
