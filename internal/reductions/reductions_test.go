package reductions

import (
	"math/rand"
	"testing"

	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/exact"
)

// TestMinVertexCoverBruteForce validates the B&B cover solver against
// subset enumeration on tiny graphs.
func TestMinVertexCoverBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		g := RandomGraph(rng, 7, 0.35)
		want := bruteCover(g)
		if got := g.MinVertexCover(); got != want {
			t.Fatalf("trial %d: bb=%d brute=%d edges=%v", trial, got, want, g.Edges)
		}
	}
}

func bruteCover(g *Graph) int {
	for k := 0; k <= g.N; k++ {
		if coverOfSize(g, k, 0, make([]bool, g.N)) {
			return k
		}
	}
	return g.N
}

func coverOfSize(g *Graph, k, from int, in []bool) bool {
	covered := true
	for _, e := range g.Edges {
		if !in[e[0]] && !in[e[1]] {
			covered = false
			break
		}
	}
	if covered {
		return true
	}
	if k == 0 {
		return false
	}
	for v := from; v < g.N; v++ {
		in[v] = true
		if coverOfSize(g, k-1, v+1, in) {
			in[v] = false
			return true
		}
		in[v] = false
	}
	return false
}

// TestSelfJoinVertexCover is the executable Proposition 4.16: the
// minimum contingency of r₀ for q :- Rⁿ(x),S(x,y),Rⁿ(y) equals the
// minimum vertex cover, with S exogenous or endogenous.
func TestSelfJoinVertexCover(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		g := RandomGraph(rng, 6, 0.4)
		want := g.MinVertexCover()
		for _, sEndo := range []bool{false, true} {
			inst := SelfJoinFromGraph(g, sEndo)
			size, ok, err := exact.MinContingencyDB(inst.DB, inst.Q, inst.Target)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || size != want {
				t.Fatalf("trial %d sEndo=%v: contingency=%d(%v) cover=%d", trial, sEndo, size, ok, want)
			}
		}
	}
}

// TestH1Fig6Golden replays the exact Fig. 6 instance: triples
// (1,1,2),(1,2,1),(2,1,1),(3,3,2); the minimum cover is {c1,c2}, so
// ρ(r₀) = 1/3.
func TestH1Fig6Golden(t *testing.T) {
	h := &Hypergraph3{NA: 3, NB: 3, NC: 2}
	h.AddTriple(0, 0, 1)
	h.AddTriple(0, 1, 0)
	h.AddTriple(1, 0, 0)
	h.AddTriple(2, 2, 1)
	if got := h.MinVertexCover(); got != 2 {
		t.Fatalf("Fig. 6 min cover = %d, want 2", got)
	}
	inst := H1FromHypergraph(h, false)
	size, ok, err := exact.MinContingencyDB(inst.DB, inst.Q, inst.Target)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || size != 2 {
		t.Fatalf("Fig. 6 contingency = %d(%v), want 2 (ρ = 1/3)", size, ok)
	}
}

// TestH1VertexCoverReduction fuzzes the Fig. 6 reduction.
func TestH1VertexCoverReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 12; trial++ {
		h := RandomHypergraph3(rng, 3, 3, 3, 5)
		want := h.MinVertexCover()
		for _, wEndo := range []bool{false, true} {
			inst := H1FromHypergraph(h, wEndo)
			size, ok, err := exact.MinContingencyDB(inst.DB, inst.Q, inst.Target)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || size != want {
				t.Fatalf("trial %d wEndo=%v: contingency=%d(%v) cover=%d triples=%v",
					trial, wEndo, size, ok, want, h.Triples)
			}
		}
	}
}

// TestFormulaBasics exercises validation, evaluation and brute-force
// SAT.
func TestFormulaBasics(t *testing.T) {
	f := Formula{NumVars: 3, Clauses: []Clause{
		{{Var: 0}, {Var: 1}, {Var: 2}},
	}}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	sat, assign := f.Satisfiable()
	if !sat || !f.Evaluate(assign) {
		t.Fatal("x∨y∨z must be satisfiable")
	}
	bad := Formula{NumVars: 2, Clauses: []Clause{
		{{Var: 0}, {Var: 0, Neg: true}, {Var: 1}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate variable in clause must be rejected")
	}
	oor := Formula{NumVars: 1, Clauses: []Clause{{{Var: 0}, {Var: 1}, {Var: 2}}}}
	if err := oor.Validate(); err == nil {
		t.Error("out-of-range variable must be rejected")
	}
}

// unsat8 is the canonical unsatisfiable 3CNF: all eight sign patterns
// over three variables.
func unsat8() Formula {
	f := Formula{NumVars: 3}
	for mask := 0; mask < 8; mask++ {
		f.Clauses = append(f.Clauses, Clause{
			{Var: 0, Neg: mask&1 != 0},
			{Var: 1, Neg: mask&2 != 0},
			{Var: 2, Neg: mask&4 != 0},
		})
	}
	return f
}

// TestH2SATRings is the executable Lemma C.3: the canonical ring
// contingency of some assignment is valid iff the formula is
// satisfiable — checked on satisfiable and unsatisfiable formulas.
func TestH2SATRings(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var formulas []Formula
	for i := 0; i < 4; i++ {
		formulas = append(formulas, RandomFormula(rng, 4, 2))
	}
	formulas = append(formulas, unsat8())
	for fi, f := range formulas {
		inst, err := BuildRings(f)
		if err != nil {
			t.Fatal(err)
		}
		wantSAT, _ := f.Satisfiable()
		gotSAT, err := inst.SatisfiableViaRings(f.NumVars)
		if err != nil {
			t.Fatal(err)
		}
		if gotSAT != wantSAT {
			t.Fatalf("formula %d: rings say %v, SAT says %v", fi, gotSAT, wantSAT)
		}
	}
}

// TestRingStructure checks Lemma C.2's counting: each ring has mᵢ
// forward edges per sign, and for a satisfying assignment the canonical
// contingency has size Σmᵢ and is valid.
func TestRingStructure(t *testing.T) {
	f := Formula{NumVars: 3, Clauses: []Clause{
		{{Var: 0}, {Var: 1, Neg: true}, {Var: 2}},
	}}
	inst, err := BuildRings(f)
	if err != nil {
		t.Fatal(err)
	}
	if inst.SumMi != 27 {
		t.Fatalf("Σmᵢ = %d, want 27 (three rings of 9)", inst.SumMi)
	}
	for v := 0; v < 3; v++ {
		if len(inst.SPlus[v]) != 9 || len(inst.SMinus[v]) != 9 {
			t.Fatalf("ring %d: |S⁺|=%d |S⁻|=%d, want 9/9", v, len(inst.SPlus[v]), len(inst.SMinus[v]))
		}
	}
	sat, assign := f.Satisfiable()
	if !sat {
		t.Fatal("formula should be satisfiable")
	}
	gamma := inst.AssignmentContingency(assign)
	if len(gamma) != inst.SumMi {
		t.Fatalf("|Γ| = %d, want %d", len(gamma), inst.SumMi)
	}
	ok, err := inst.ValidContingency(gamma)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("canonical contingency of a satisfying assignment must be valid")
	}
	// A violated assignment's contingency must be invalid when it
	// falsifies the clause: x=false, y=true, z=false falsifies
	// (x ∨ ¬y ∨ z).
	bad := inst.AssignmentContingency([]bool{false, true, false})
	ok, err = inst.ValidContingency(bad)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("falsifying assignment's contingency must leave the clause triangle alive")
	}
}

// TestRingMinimality verifies (on one small instance) that Σmᵢ is
// really the minimum contingency, i.e. the other direction of
// Lemma C.3 combined with Lemmas C.1/C.2.
func TestRingMinimality(t *testing.T) {
	if testing.Short() {
		t.Skip("exact search over a 3-ring instance")
	}
	f := Formula{NumVars: 3, Clauses: []Clause{
		{{Var: 0}, {Var: 1}, {Var: 2}},
	}}
	inst, err := BuildRings(f)
	if err != nil {
		t.Fatal(err)
	}
	size, ok, err := exact.MinContingencyDB(inst.DB, inst.Q, inst.Target)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || size != inst.SumMi {
		t.Fatalf("min contingency = %d(%v), want Σmᵢ = %d", size, ok, inst.SumMi)
	}
}

// TestLogspaceChain is the executable Theorem 4.15: path existence in a
// random undirected graph is decided by the responsibility of the probe
// tuple in the chain-query instance, through every intermediate
// reduction.
func TestLogspaceChain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sawPath, sawNoPath := false, false
	for trial := 0; trial < 20; trial++ {
		g := RandomGraph(rng, 6, 0.25)
		a, b := rng.Intn(g.N), rng.Intn(g.N)
		if a == b {
			continue
		}
		path := g.HasPath(a, b)
		bg := UGAPToBGAP(g, a, b)
		if bg.HasPath() != path {
			t.Fatalf("trial %d: BGAP path %v, UGAP path %v", trial, bg.HasPath(), path)
		}
		f := BGAPToFPMF(bg)
		flowVal := f.MaxFlow()
		wantFlow := int64(len(bg.Edges))
		if path {
			wantFlow++
		}
		if flowVal != wantFlow {
			t.Fatalf("trial %d: flow=%d want %d (path=%v, |E|=%d)", trial, flowVal, wantFlow, path, len(bg.Edges))
		}
		chain := FPMFToChain(f)
		eng, err := core.NewWhySo(chain.DB, chain.Q)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := eng.Responsibility(chain.Target, core.ModeAuto)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Method != core.MethodFlow && ex.Method != core.MethodCounterfactual {
			t.Fatalf("trial %d: method %v; chain query must be linear", trial, ex.Method)
		}
		if int64(ex.ContingencySize) != flowVal {
			t.Fatalf("trial %d: contingency=%d flow=%d", trial, ex.ContingencySize, flowVal)
		}
		if path {
			sawPath = true
		} else {
			sawNoPath = true
		}
	}
	if !sawPath || !sawNoPath {
		t.Fatalf("test needs both outcomes (path=%v noPath=%v)", sawPath, sawNoPath)
	}
}

func TestH2ToH3Transform(t *testing.T) {
	// Implemented in h2toh3.go; see TestH2ToH3ResponsibilitiesIdentical.
}
