// Package reductions makes the hardness theory of Meliou et al.
// (VLDB 2010) executable: every reduction used in the proofs of
// Theorem 4.1 (canonical hard queries h₁*, h₂*), Theorem 4.15
// (LOGSPACE-hardness via UGAP → BGAP → FPMF → chain query) and
// Proposition 4.16 (self-joins via vertex cover) is implemented as code
// that builds database instances and exact combinatorial baselines, so
// the equivalences the proofs assert can be checked mechanically on
// concrete inputs (and benchmarked).
package reductions

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/querycause/querycause/internal/rel"
)

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	N     int
	Edges [][2]int
}

// AddEdge inserts edge {u,v}, normalizing order and ignoring
// self-loops and duplicates.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	for _, e := range g.Edges {
		if e[0] == u && e[1] == v {
			return
		}
	}
	g.Edges = append(g.Edges, [2]int{u, v})
}

// RandomGraph samples a graph where each possible edge appears with
// probability p.
func RandomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := &Graph{N: n}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// MinVertexCover computes the exact minimum vertex cover size by branch
// and bound (branching on an endpoint of an uncovered edge).
func (g *Graph) MinVertexCover() int {
	best := g.N
	inCover := make([]bool, g.N)
	var rec func(size int)
	rec = func(size int) {
		if size >= best {
			return
		}
		// First uncovered edge.
		var pick *[2]int
		lb := 0
		used := make([]bool, g.N)
		for i := range g.Edges {
			e := &g.Edges[i]
			if inCover[e[0]] || inCover[e[1]] {
				continue
			}
			if pick == nil {
				pick = e
			}
			if !used[e[0]] && !used[e[1]] {
				lb++ // disjoint uncovered edges: matching lower bound
				used[e[0]] = true
				used[e[1]] = true
			}
		}
		if pick == nil {
			best = size
			return
		}
		if size+lb >= best {
			return
		}
		for _, v := range pick {
			inCover[v] = true
			rec(size + 1)
			inCover[v] = false
		}
	}
	rec(0)
	return best
}

// HasPath reports whether a and b are connected (used by the UGAP
// instance of Theorem 4.15).
func (g *Graph) HasPath(a, b int) bool {
	if a == b {
		return true
	}
	adj := make([][]int, g.N)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := make([]bool, g.N)
	stack := []int{a}
	seen[a] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if w == b {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// SelfJoinInstance is the Proposition 4.16 reduction: a vertex-cover
// graph encoded as an instance of q :- Rⁿ(x), S(x,y), Rⁿ(y).
type SelfJoinInstance struct {
	DB *rel.Database
	Q  *rel.Query
	// Target is the added tuple r₀ whose minimum contingency equals the
	// graph's minimum vertex cover.
	Target rel.TupleID
}

// SelfJoinFromGraph builds the instance. sEndo selects whether S is
// endogenous (the proposition proves hardness either way).
func SelfJoinFromGraph(g *Graph, sEndo bool) *SelfJoinInstance {
	db := rel.NewDatabase()
	val := func(v int) rel.Value { return rel.Value(fmt.Sprintf("x%d", v)) }
	for v := 0; v < g.N; v++ {
		db.MustAdd("R", true, val(v))
	}
	for _, e := range g.Edges {
		db.MustAdd("S", sEndo, val(e[0]), val(e[1]))
	}
	r0 := db.MustAdd("R", true, "x_target")
	db.MustAdd("S", sEndo, "x_target", "x_target")
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x")),
		rel.NewAtom("S", rel.V("x"), rel.V("y")),
		rel.NewAtom("R", rel.V("y")),
	)
	return &SelfJoinInstance{DB: db, Q: q, Target: r0}
}

// Hypergraph3 is a 3-partite 3-uniform hypergraph: parts of sizes
// NA, NB, NC and triples (a,b,c) with a ∈ [0,NA) etc. Its minimum
// vertex cover underlies the h₁* hardness proof (Theorem 4.1, Fig. 6).
type Hypergraph3 struct {
	NA, NB, NC int
	Triples    [][3]int
}

// AddTriple inserts a hyperedge, ignoring duplicates.
func (h *Hypergraph3) AddTriple(a, b, c int) {
	for _, t := range h.Triples {
		if t == [3]int{a, b, c} {
			return
		}
	}
	h.Triples = append(h.Triples, [3]int{a, b, c})
}

// RandomHypergraph3 samples nt distinct triples.
func RandomHypergraph3(rng *rand.Rand, na, nb, nc, nt int) *Hypergraph3 {
	h := &Hypergraph3{NA: na, NB: nb, NC: nc}
	for len(h.Triples) < nt && len(h.Triples) < na*nb*nc {
		h.AddTriple(rng.Intn(na), rng.Intn(nb), rng.Intn(nc))
	}
	return h
}

// MinVertexCover computes the exact minimum set of vertices touching
// every triple, by branch and bound with a disjoint-triple lower bound.
func (h *Hypergraph3) MinVertexCover() int {
	// Vertices are encoded part-wise: a → (0,a), b → (1,b), c → (2,c).
	type vertex struct{ part, idx int }
	inCover := make(map[vertex]bool)
	best := len(h.Triples) // covering one vertex per triple always works
	verts := func(t [3]int) [3]vertex {
		return [3]vertex{{0, t[0]}, {1, t[1]}, {2, t[2]}}
	}
	var rec func(size int)
	rec = func(size int) {
		if size >= best {
			return
		}
		var pick *[3]int
		lb := 0
		used := make(map[vertex]bool)
		for i := range h.Triples {
			t := &h.Triples[i]
			vs := verts(*t)
			if inCover[vs[0]] || inCover[vs[1]] || inCover[vs[2]] {
				continue
			}
			if pick == nil {
				pick = t
			}
			if !used[vs[0]] && !used[vs[1]] && !used[vs[2]] {
				lb++
				used[vs[0]] = true
				used[vs[1]] = true
				used[vs[2]] = true
			}
		}
		if pick == nil {
			best = size
			return
		}
		if size+lb >= best {
			return
		}
		for _, v := range verts(*pick) {
			inCover[v] = true
			rec(size + 1)
			delete(inCover, v)
		}
	}
	rec(0)
	return best
}

// H1Instance is the Theorem 4.1 / Fig. 6 reduction: a 3-partite
// 3-uniform hypergraph encoded as an instance of
// h₁* :- Aⁿ(x), Bⁿ(y), Cⁿ(z), W(x,y,z).
type H1Instance struct {
	DB *rel.Database
	Q  *rel.Query
	// Target is r₀ = A(x₀); its minimum contingency equals the
	// hypergraph's minimum vertex cover.
	Target rel.TupleID
}

// H1FromHypergraph builds the instance; wEndo selects W's status (the
// theorem proves hardness either way).
func H1FromHypergraph(h *Hypergraph3, wEndo bool) *H1Instance {
	db := rel.NewDatabase()
	av := func(i int) rel.Value { return rel.Value(fmt.Sprintf("a%d", i)) }
	bv := func(i int) rel.Value { return rel.Value(fmt.Sprintf("b%d", i)) }
	cv := func(i int) rel.Value { return rel.Value(fmt.Sprintf("c%d", i)) }
	for i := 0; i < h.NA; i++ {
		db.MustAdd("A", true, av(i))
	}
	for i := 0; i < h.NB; i++ {
		db.MustAdd("B", true, bv(i))
	}
	for i := 0; i < h.NC; i++ {
		db.MustAdd("C", true, cv(i))
	}
	for _, t := range h.Triples {
		db.MustAdd("W", wEndo, av(t[0]), bv(t[1]), cv(t[2]))
	}
	r0 := db.MustAdd("A", true, "a_target")
	db.MustAdd("B", true, "b_target")
	db.MustAdd("C", true, "c_target")
	db.MustAdd("W", wEndo, "a_target", "b_target", "c_target")
	q := rel.NewBoolean(
		rel.NewAtom("A", rel.V("x")),
		rel.NewAtom("B", rel.V("y")),
		rel.NewAtom("C", rel.V("z")),
		rel.NewAtom("W", rel.V("x"), rel.V("y"), rel.V("z")),
	)
	return &H1Instance{DB: db, Q: q, Target: r0}
}

// SortTriples orders triples lexicographically (determinism helper).
func (h *Hypergraph3) SortTriples() {
	sort.Slice(h.Triples, func(i, j int) bool {
		a, b := h.Triples[i], h.Triples[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
}
