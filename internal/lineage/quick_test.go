package lineage

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/querycause/querycause/internal/rel"
)

// randDNF is a quick.Generator-friendly random DNF over variables
// 0..nVars-1.
type randDNF struct {
	D DNF
}

func (randDNF) Generate(rng *rand.Rand, size int) reflect.Value {
	const nVars = 8
	nConj := 1 + rng.Intn(6)
	var d DNF
	for i := 0; i < nConj; i++ {
		k := 1 + rng.Intn(3)
		ids := make([]rel.TupleID, k)
		for j := range ids {
			ids[j] = rel.TupleID(rng.Intn(nVars))
		}
		d.Conjuncts = append(d.Conjuncts, NewConjunct(ids...))
	}
	return reflect.ValueOf(randDNF{D: d})
}

// TestQuickRemoveRedundantPreservesFunction: minimization never changes
// the Boolean function — checked on all 2^8 assignments.
func TestQuickRemoveRedundantPreservesFunction(t *testing.T) {
	f := func(rd randDNF) bool {
		min := RemoveRedundant(rd.D)
		for mask := 0; mask < 1<<8; mask++ {
			removed := make(map[rel.TupleID]bool)
			for v := 0; v < 8; v++ {
				if mask&(1<<v) == 0 {
					removed[rel.TupleID(v)] = true
				}
			}
			if rd.D.EvalWithout(removed) != min.EvalWithout(removed) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMinimalDNFHasNoRedundancy: after minimization no conjunct
// strictly contains another.
func TestQuickMinimalDNFHasNoRedundancy(t *testing.T) {
	f := func(rd randDNF) bool {
		min := RemoveRedundant(rd.D)
		for i, a := range min.Conjuncts {
			for j, b := range min.Conjuncts {
				if i != j && a.StrictSubsetOf(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubsetTransitivity: conjunct subset ordering is transitive
// and antisymmetric on the generated population.
func TestQuickSubsetTransitivity(t *testing.T) {
	f := func(a, b, c randDNF) bool {
		x := a.D.Conjuncts[0]
		y := b.D.Conjuncts[0]
		z := c.D.Conjuncts[0]
		if x.SubsetOf(y) && y.SubsetOf(z) && !x.SubsetOf(z) {
			return false
		}
		if x.SubsetOf(y) && y.SubsetOf(x) && !x.Equal(y) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCausesAreLineageVars: every cause occurs in the minimal
// lineage and vice versa (Theorem 3.2's criterion restated).
func TestQuickCausesAreLineageVars(t *testing.T) {
	f := func(rd randDNF) bool {
		min := RemoveRedundant(rd.D)
		vars := min.Vars()
		seen := make(map[rel.TupleID]bool)
		for _, v := range vars {
			seen[v] = true
		}
		for v := rel.TupleID(0); v < 8; v++ {
			has := len(min.ConjunctsWith(v)) > 0
			if has != seen[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
