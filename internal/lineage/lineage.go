// Package lineage implements the positive-DNF lineage algebra of
// Section 3 of Meliou et al. (VLDB 2010): building the lineage Φ of a
// Boolean conjunctive query, specializing it to the endogenous lineage
// Φⁿ (Definition 3.1), removing redundant conjuncts, and extracting the
// set of actual causes (Theorem 3.2).
//
// A lineage is a monotone Boolean expression in DNF over tuple variables
// X_t. Conjuncts are represented as sorted, duplicate-free TupleID sets,
// so set semantics (needed for the strictness condition on redundancy)
// are automatic.
package lineage

import (
	"fmt"
	"sort"
	"strings"

	"github.com/querycause/querycause/internal/ra"
	"github.com/querycause/querycause/internal/rel"
)

// Conjunct is one monomial of a DNF lineage: a sorted set of tuple IDs.
type Conjunct []rel.TupleID

// NewConjunct builds a sorted, deduplicated conjunct.
func NewConjunct(ids ...rel.TupleID) Conjunct {
	c := append(Conjunct(nil), ids...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	out := c[:0]
	for i, id := range c {
		if i == 0 || c[i-1] != id {
			out = append(out, id)
		}
	}
	return out
}

// Contains reports whether the conjunct includes the tuple variable.
func (c Conjunct) Contains(id rel.TupleID) bool {
	i := sort.Search(len(c), func(i int) bool { return c[i] >= id })
	return i < len(c) && c[i] == id
}

// SubsetOf reports whether c ⊆ other. Both must be sorted (invariant).
func (c Conjunct) SubsetOf(other Conjunct) bool {
	if len(c) > len(other) {
		return false
	}
	i := 0
	for _, id := range c {
		for i < len(other) && other[i] < id {
			i++
		}
		if i == len(other) || other[i] != id {
			return false
		}
		i++
	}
	return true
}

// StrictSubsetOf reports whether c ⊊ other.
func (c Conjunct) StrictSubsetOf(other Conjunct) bool {
	return len(c) < len(other) && c.SubsetOf(other)
}

// Equal reports set equality.
func (c Conjunct) Equal(other Conjunct) bool {
	if len(c) != len(other) {
		return false
	}
	for i := range c {
		if c[i] != other[i] {
			return false
		}
	}
	return true
}

func (c Conjunct) key() string {
	var b strings.Builder
	for _, id := range c {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String()
}

// DNF is a positive Boolean expression in disjunctive normal form over
// tuple variables. True marks the expression equivalent to the constant
// true (some conjunct evaluated to the empty set after substitution).
type DNF struct {
	Conjuncts []Conjunct
	True      bool
}

// Build computes the lineage Φ of the Boolean query q over db: one
// conjunct per valuation, containing the variables of all witness tuples
// (Section 3). Duplicate conjuncts are merged. Evaluation goes through
// the registered backend (rel.Valuations); for the endogenous lineage
// prefer NLineageOf, which captures Φⁿ during evaluation instead of
// materializing Φ first.
func Build(db *rel.Database, q *rel.Query) (DNF, error) {
	if !q.IsBoolean() {
		return DNF{}, fmt.Errorf("lineage: query %s is not Boolean; call Bind first", q.Name)
	}
	vals, err := rel.Valuations(db, q)
	if err != nil {
		return DNF{}, err
	}
	return buildFrom(vals), nil
}

// BuildNaive is Build over the naive reference evaluator
// (rel.EvalNaive), regardless of the registered backend. The
// differential harness composes it into NLineageOfNaive to check the
// streamed lineage against the definitional two-pass construction.
func BuildNaive(db *rel.Database, q *rel.Query) (DNF, error) {
	if !q.IsBoolean() {
		return DNF{}, fmt.Errorf("lineage: query %s is not Boolean; call Bind first", q.Name)
	}
	vals, err := rel.EvalNaive(db, q)
	if err != nil {
		return DNF{}, err
	}
	return buildFrom(vals), nil
}

func buildFrom(vals []rel.Valuation) DNF {
	d := DNF{}
	seen := make(map[string]bool)
	for _, v := range vals {
		c := NewConjunct(v.Witness...)
		k := c.key()
		if !seen[k] {
			seen[k] = true
			d.Conjuncts = append(d.Conjuncts, c)
		}
	}
	return d
}

// NLineage computes Φⁿ = Φ[X_t := true ∀ t ∈ Dx] (Definition 3.1):
// exogenous variables are removed from each conjunct; a conjunct that
// becomes empty makes the whole expression true (the query holds on the
// exogenous tuples alone, so no endogenous tuple is a cause).
func NLineage(d DNF, db *rel.Database) DNF {
	if d.True {
		return d
	}
	out := DNF{}
	seen := make(map[string]bool)
	for _, c := range d.Conjuncts {
		nc := make(Conjunct, 0, len(c))
		for _, id := range c {
			if db.Endo(id) {
				nc = append(nc, id)
			}
		}
		if len(nc) == 0 {
			return DNF{True: true}
		}
		k := nc.key()
		if !seen[k] {
			seen[k] = true
			out.Conjuncts = append(out.Conjuncts, nc)
		}
	}
	return out
}

// RemoveRedundant drops every conjunct that strictly contains another
// conjunct (Section 3: "a conjunct c is redundant if there exists another
// conjunct c′ that is a strict subset of c"). The result is the unique
// minimal equivalent DNF of a monotone expression, in canonical order
// (by size, then lexicographically by tuple ID) — independent of the
// evaluation backend that produced the conjuncts, so naive and planned
// lineages compare byte-for-byte.
func RemoveRedundant(d DNF) DNF {
	if d.True {
		return d
	}
	// Canonical order also puts potential subsets first.
	cs := append([]Conjunct(nil), d.Conjuncts...)
	sort.Slice(cs, func(i, j int) bool { return conjunctLess(cs[i], cs[j]) })
	var kept []Conjunct
	for _, c := range cs {
		redundant := false
		for _, k := range kept {
			if k.StrictSubsetOf(c) {
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, c)
		}
	}
	return DNF{Conjuncts: kept}
}

// conjunctLess orders conjuncts canonically: by size, then
// lexicographically by tuple ID.
func conjunctLess(a, b Conjunct) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Satisfiable reports whether the positive DNF is satisfiable: it is
// unless it has no conjuncts (Section 3).
func (d DNF) Satisfiable() bool { return d.True || len(d.Conjuncts) > 0 }

// EvalWithout reports whether the DNF is true when all variables in
// removed are set false and all others true (i.e., whether some conjunct
// survives the removal).
func (d DNF) EvalWithout(removed map[rel.TupleID]bool) bool {
	if d.True {
		return true
	}
outer:
	for _, c := range d.Conjuncts {
		for _, id := range c {
			if removed[id] {
				continue outer
			}
		}
		return true
	}
	return false
}

// Vars returns the sorted set of tuple variables occurring in the DNF.
func (d DNF) Vars() []rel.TupleID {
	seen := make(map[rel.TupleID]bool)
	for _, c := range d.Conjuncts {
		for _, id := range c {
			seen[id] = true
		}
	}
	out := make([]rel.TupleID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConjunctsWith returns the conjuncts containing the given variable.
func (d DNF) ConjunctsWith(id rel.TupleID) []Conjunct {
	var out []Conjunct
	for _, c := range d.Conjuncts {
		if c.Contains(id) {
			out = append(out, c)
		}
	}
	return out
}

// String renders the DNF deterministically, e.g. "X1·X3 ∨ X1·X4".
func (d DNF) String() string {
	if d.True {
		return "true"
	}
	if len(d.Conjuncts) == 0 {
		return "false"
	}
	parts := make([]string, len(d.Conjuncts))
	for i, c := range d.Conjuncts {
		ids := make([]string, len(c))
		for j, id := range c {
			ids[j] = fmt.Sprintf("X%d", id)
		}
		parts[i] = strings.Join(ids, "·")
	}
	sort.Strings(parts)
	return strings.Join(parts, " ∨ ")
}

// Causes computes the set of actual causes of the Boolean query q on db
// per Theorem 3.2: the endogenous tuples occurring in some non-redundant
// conjunct of the n-lineage Φⁿ. The result is sorted by tuple ID.
//
// It returns nil both when the query is false (nothing to explain) and
// when the query already holds on the exogenous part alone (no
// endogenous tuple makes a difference).
func Causes(db *rel.Database, q *rel.Query) ([]rel.TupleID, error) {
	n, err := NLineageOf(db, q)
	if err != nil {
		return nil, err
	}
	if n.True {
		return nil, nil
	}
	return n.Vars(), nil
}

// NLineageOf returns the minimal endogenous lineage Φⁿ of q on db. The
// conjuncts are captured during evaluation: the streaming evaluator
// (internal/ra) drops exogenous witnesses as bindings are produced, so
// there is no second pass over the valuations and the full Φ is never
// materialized. Only redundancy removal runs afterwards.
func NLineageOf(db *rel.Database, q *rel.Query) (DNF, error) {
	if !q.IsBoolean() {
		return DNF{}, fmt.Errorf("lineage: query %s is not Boolean; call Bind first", q.Name)
	}
	conjs, isTrue, err := ra.NLineageConjuncts(db, q)
	if err != nil {
		return DNF{}, err
	}
	if isTrue {
		return DNF{True: true}, nil
	}
	d := DNF{Conjuncts: make([]Conjunct, 0, len(conjs))}
	for _, c := range conjs {
		d.Conjuncts = append(d.Conjuncts, Conjunct(c))
	}
	return RemoveRedundant(d), nil
}

// NLineageOfNaive composes BuildNaive, NLineage and RemoveRedundant —
// the definitional two-pass construction of the minimal Φⁿ over the
// naive reference evaluator. The differential harness checks it against
// the streamed NLineageOf; thanks to canonical conjunct order the two
// are identical structures, not merely equivalent expressions.
func NLineageOfNaive(db *rel.Database, q *rel.Query) (DNF, error) {
	phi, err := BuildNaive(db, q)
	if err != nil {
		return DNF{}, err
	}
	return RemoveRedundant(NLineage(phi, db)), nil
}
