package lineage

import (
	"math/rand"
	"testing"

	"github.com/querycause/querycause/internal/rel"
)

func TestBitsBasics(t *testing.T) {
	b := NewBits(130)
	for _, i := range []uint32{0, 63, 64, 129} {
		if b.Has(i) {
			t.Fatalf("fresh bitset has %d", i)
		}
		b.Set(i)
		if !b.Has(i) {
			t.Fatalf("Set(%d) not visible", i)
		}
	}
	if got := b.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	o := NewBits(130)
	o.Set(64)
	if !b.Intersects(o) || b.IntersectCount(o) != 1 {
		t.Fatal("intersection with {64} wrong")
	}
	if !o.SubsetOf(b) || b.SubsetOf(o) {
		t.Fatal("subset relation wrong")
	}
	b.AndNot(o)
	if b.Has(64) || b.Count() != 3 {
		t.Fatal("AndNot failed")
	}
	b.Clear(0)
	if b.Has(0) {
		t.Fatal("Clear failed")
	}
	c := NewBits(130)
	c.Copy(b)
	if !c.Equal(b) {
		t.Fatal("Copy/Equal failed")
	}
	b.Zero()
	if b.Count() != 0 {
		t.Fatal("Zero failed")
	}
	if len(b.AppendKey(nil)) != 8*len(b) {
		t.Fatal("AppendKey width wrong")
	}
}

// TestIndexRoundTrip checks the interning against the DNF it came
// from: slots biject with Vars(), conjunct slot lists and bitsets
// agree with the conjuncts, and the occurrence index inverts them.
func TestIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var d DNF
		nconj := 1 + rng.Intn(8)
		for i := 0; i < nconj; i++ {
			k := 1 + rng.Intn(4)
			ids := make([]rel.TupleID, k)
			for j := range ids {
				// Sparse, non-contiguous IDs so slots ≠ IDs.
				ids[j] = rel.TupleID(rng.Intn(30) * 7)
			}
			d.Conjuncts = append(d.Conjuncts, NewConjunct(ids...))
		}
		ix := NewIndex(d)
		vars := d.Vars()
		if ix.NumVars() != len(vars) || ix.NumConjuncts() != len(d.Conjuncts) {
			t.Fatalf("trial %d: size mismatch", trial)
		}
		for s, id := range vars {
			if ix.ID(uint32(s)) != id {
				t.Fatalf("trial %d: slot %d is %d, want %d", trial, s, ix.ID(uint32(s)), id)
			}
			slot, ok := ix.Slot(id)
			if !ok || slot != uint32(s) {
				t.Fatalf("trial %d: Slot(%d) = (%d,%v)", trial, id, slot, ok)
			}
		}
		if _, ok := ix.Slot(rel.TupleID(1)); ok {
			t.Fatalf("trial %d: Slot found an ID outside the DNF", trial)
		}
		for ci, c := range d.Conjuncts {
			slots := ix.ConjunctSlots(ci)
			bits := ix.ConjunctBits(ci)
			if len(slots) != len(c) || bits.Count() != len(c) {
				t.Fatalf("trial %d conj %d: width mismatch", trial, ci)
			}
			for i, id := range c {
				if ix.ID(slots[i]) != id || !bits.Has(slots[i]) {
					t.Fatalf("trial %d conj %d: slot %d ≠ id %d", trial, ci, slots[i], id)
				}
				found := false
				for _, oc := range ix.Occurrences(slots[i]) {
					if int(oc) == ci {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: occurrence index misses conj %d for id %d", trial, ci, id)
				}
			}
		}
	}
}

// TestSatisfiableWithoutMatchesEval cross-checks the bitset
// evaluation against DNF.EvalWithout on random removals.
func TestSatisfiableWithoutMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		var d DNF
		for i := 0; i < 1+rng.Intn(6); i++ {
			k := 1 + rng.Intn(3)
			ids := make([]rel.TupleID, k)
			for j := range ids {
				ids[j] = rel.TupleID(rng.Intn(9))
			}
			d.Conjuncts = append(d.Conjuncts, NewConjunct(ids...))
		}
		ix := NewIndex(d)
		removedMap := make(map[rel.TupleID]bool)
		removedBits := ix.NewSlotBits()
		for _, id := range d.Vars() {
			if rng.Float64() < 0.4 {
				removedMap[id] = true
				s, _ := ix.Slot(id)
				removedBits.Set(s)
			}
		}
		if got, want := ix.SatisfiableWithout(removedBits), d.EvalWithout(removedMap); got != want {
			t.Fatalf("trial %d: SatisfiableWithout=%v EvalWithout=%v (DNF %v minus %v)", trial, got, want, d, removedMap)
		}
	}
}
