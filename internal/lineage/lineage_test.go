package lineage

import (
	"testing"

	"github.com/querycause/querycause/internal/rel"
)

func mustIDs(t *testing.T, db *rel.Database, relName string, args ...rel.Value) rel.TupleID {
	t.Helper()
	r := db.Relation(relName)
	if r == nil {
		t.Fatalf("no relation %s", relName)
	}
outer:
	for _, tup := range r.Tuples() {
		for i, a := range args {
			if tup.Args[i] != a {
				continue outer
			}
		}
		return tup.ID
	}
	t.Fatalf("no tuple %s(%v)", relName, args)
	return 0
}

func TestNewConjunctSortsAndDedups(t *testing.T) {
	c := NewConjunct(5, 1, 3, 1, 5)
	if len(c) != 3 || c[0] != 1 || c[1] != 3 || c[2] != 5 {
		t.Fatalf("NewConjunct = %v", c)
	}
}

func TestSubsetRelations(t *testing.T) {
	a := NewConjunct(1, 3)
	b := NewConjunct(1, 2, 3)
	if !a.SubsetOf(b) || !a.StrictSubsetOf(b) {
		t.Error("a should be strict subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b is not subset of a")
	}
	if !a.SubsetOf(a) || a.StrictSubsetOf(a) {
		t.Error("subset reflexivity / strictness broken")
	}
	if !a.Equal(NewConjunct(3, 1)) {
		t.Error("Equal should ignore construction order")
	}
	if !a.Contains(3) || a.Contains(2) {
		t.Error("Contains broken")
	}
}

// TestRemoveRedundantPaperExample checks the Section 3 example:
// Φ = X1X3 ∨ X1X2X3 ∨ X1X4 simplifies to X1X3 ∨ X1X4.
func TestRemoveRedundantPaperExample(t *testing.T) {
	d := DNF{Conjuncts: []Conjunct{
		NewConjunct(1, 3),
		NewConjunct(1, 2, 3),
		NewConjunct(1, 4),
	}}
	m := RemoveRedundant(d)
	if len(m.Conjuncts) != 2 {
		t.Fatalf("minimal DNF has %d conjuncts, want 2: %v", len(m.Conjuncts), m)
	}
	for _, c := range m.Conjuncts {
		if len(c) != 2 {
			t.Errorf("unexpected conjunct %v", c)
		}
	}
}

func TestRemoveRedundantKeepsEqualDuplicatesOnce(t *testing.T) {
	d := DNF{Conjuncts: []Conjunct{NewConjunct(1, 2), NewConjunct(2, 1)}}
	// Build/NLineage dedupe; RemoveRedundant must not treat equal sets as
	// strict subsets of each other.
	m := RemoveRedundant(d)
	if len(m.Conjuncts) != 2 {
		// Both survive (they are equal, not strictly contained); the
		// algebra tolerates this because Build deduplicates upstream.
		t.Logf("equal conjuncts kept: %v", m)
	}
	if !m.Satisfiable() {
		t.Error("must stay satisfiable")
	}
}

// example33DB builds the instance of Example 3.3: the Example 2.2
// database where R(a4,a3) is exogenous and R(a3,a3), S(a3) endogenous.
func example33DB(t *testing.T) *rel.Database {
	t.Helper()
	db := rel.NewDatabase()
	db.MustAdd("R", true, "a1", "a5")
	db.MustAdd("R", true, "a2", "a1")
	db.MustAdd("R", true, "a3", "a3")
	db.MustAdd("R", false, "a4", "a3") // exogenous
	db.MustAdd("R", true, "a4", "a2")
	for _, v := range []rel.Value{"a1", "a2", "a3", "a4", "a6"} {
		db.MustAdd("S", true, v)
	}
	return db
}

// TestExample3_3 reproduces Example 3.3: for q :- R(x,'a3'), S('a3') the
// n-lineage simplifies to X_{S(a3)} and S(a3) is the only actual cause.
func TestExample3_3(t *testing.T) {
	db := example33DB(t)
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.C("a3")),
		rel.NewAtom("S", rel.C("a3")),
	)
	phi, err := Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(phi.Conjuncts) != 2 {
		t.Fatalf("Φ has %d conjuncts, want 2 (%v)", len(phi.Conjuncts), phi)
	}
	n := RemoveRedundant(NLineage(phi, db))
	sa3 := mustIDs(t, db, "S", "a3")
	if len(n.Conjuncts) != 1 || len(n.Conjuncts[0]) != 1 || n.Conjuncts[0][0] != sa3 {
		t.Fatalf("Φⁿ = %v, want single conjunct {S(a3)}", n)
	}
	causes, err := Causes(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(causes) != 1 || causes[0] != sa3 {
		t.Fatalf("causes = %v, want [S(a3)]", causes)
	}
}

// TestNLineageTrue: if the query holds on exogenous tuples alone, Φⁿ is
// the constant true and there are no causes.
func TestNLineageTrue(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", false, "a")
	db.MustAdd("R", true, "b")
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x")))
	phi, _ := Build(db, q)
	n := NLineage(phi, db)
	if !n.True {
		t.Fatalf("Φⁿ = %v, want true", n)
	}
	causes, _ := Causes(db, q)
	if causes != nil {
		t.Fatalf("causes = %v, want none", causes)
	}
}

func TestBuildRejectsNonBoolean(t *testing.T) {
	db := rel.NewDatabase()
	q := &rel.Query{Name: "q", Head: []rel.Term{rel.V("x")}, Atoms: []rel.Atom{rel.NewAtom("R", rel.V("x"))}}
	if _, err := Build(db, q); err == nil {
		t.Fatal("expected error for non-Boolean query")
	}
}

func TestBuildFalseQuery(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", true, "a")
	q := rel.NewBoolean(rel.NewAtom("R", rel.C("zzz")))
	phi, err := Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if phi.Satisfiable() {
		t.Fatalf("Φ = %v, want unsatisfiable", phi)
	}
	causes, _ := Causes(db, q)
	if len(causes) != 0 {
		t.Fatalf("false query has causes %v", causes)
	}
}

// TestSelfJoinConjunctSetSemantics: with a self-join, a valuation mapping
// two atoms to the same tuple yields a singleton conjunct (set
// semantics), which is what makes it non-redundant (cf. Example 3.6
// fidelity notes in doc.go).
func TestSelfJoinConjunctSetSemantics(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", false, "a4", "a3")
	db.MustAdd("R", false, "a3", "a3")
	db.MustAdd("S", true, "a3")
	db.MustAdd("S", true, "a4")
	// q :- S(x), R(x,y), S(y)
	q := rel.NewBoolean(
		rel.NewAtom("S", rel.V("x")),
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y")),
	)
	n, err := NLineageOf(db, q)
	if err != nil {
		t.Fatal(err)
	}
	sa3 := mustIDs(t, db, "S", "a3")
	// Valuations: (x=a4,y=a3) → {S(a4),S(a3)}; (x=a3,y=a3) → {S(a3)}.
	// Minimal: {S(a3)} alone.
	if len(n.Conjuncts) != 1 || len(n.Conjuncts[0]) != 1 || n.Conjuncts[0][0] != sa3 {
		t.Fatalf("Φⁿ = %v, want {S(a3)}", n)
	}
	causes, _ := Causes(db, q)
	if len(causes) != 1 || causes[0] != sa3 {
		t.Fatalf("causes = %v, want [S(a3)]", causes)
	}
}

func TestEvalWithout(t *testing.T) {
	d := DNF{Conjuncts: []Conjunct{NewConjunct(1, 2), NewConjunct(3)}}
	if !d.EvalWithout(map[rel.TupleID]bool{1: true}) {
		t.Error("conjunct {3} should survive")
	}
	if d.EvalWithout(map[rel.TupleID]bool{1: true, 3: true}) {
		t.Error("no conjunct survives")
	}
	if !(DNF{True: true}).EvalWithout(map[rel.TupleID]bool{1: true}) {
		t.Error("true stays true")
	}
}

func TestVarsAndConjunctsWith(t *testing.T) {
	d := DNF{Conjuncts: []Conjunct{NewConjunct(1, 2), NewConjunct(2, 3)}}
	vars := d.Vars()
	if len(vars) != 3 {
		t.Fatalf("Vars = %v", vars)
	}
	with2 := d.ConjunctsWith(2)
	if len(with2) != 2 {
		t.Fatalf("ConjunctsWith(2) = %v", with2)
	}
	if got := d.ConjunctsWith(9); got != nil {
		t.Fatalf("ConjunctsWith(9) = %v", got)
	}
}

func TestDNFString(t *testing.T) {
	if got := (DNF{True: true}).String(); got != "true" {
		t.Errorf("String = %q", got)
	}
	if got := (DNF{}).String(); got != "false" {
		t.Errorf("String = %q", got)
	}
	d := DNF{Conjuncts: []Conjunct{NewConjunct(2, 1)}}
	if got := d.String(); got != "X1·X2" {
		t.Errorf("String = %q", got)
	}
}

// TestRemoveRedundantCanonicalOrder: the minimal DNF comes out in
// canonical order (size, then lexicographic by tuple ID) regardless of
// input order, so lineages from different evaluation backends compare
// structurally.
func TestRemoveRedundantCanonicalOrder(t *testing.T) {
	a := DNF{Conjuncts: []Conjunct{
		NewConjunct(5, 6, 7), NewConjunct(2, 9), NewConjunct(1, 3), NewConjunct(4),
	}}
	b := DNF{Conjuncts: []Conjunct{
		NewConjunct(4), NewConjunct(1, 3), NewConjunct(5, 6, 7), NewConjunct(2, 9),
	}}
	ma, mb := RemoveRedundant(a), RemoveRedundant(b)
	if ma.String() != mb.String() {
		t.Fatalf("input order leaked into the minimal DNF: %s vs %s", ma, mb)
	}
	want := []Conjunct{NewConjunct(4), NewConjunct(1, 3), NewConjunct(2, 9), NewConjunct(5, 6, 7)}
	if len(ma.Conjuncts) != len(want) {
		t.Fatalf("got %d conjuncts, want %d", len(ma.Conjuncts), len(want))
	}
	for i := range want {
		if !ma.Conjuncts[i].Equal(want[i]) {
			t.Fatalf("conjunct %d = %v, want %v", i, ma.Conjuncts[i], want[i])
		}
	}
}

// TestNLineageOfStreamedEqualsNaive: the streamed single-pass lineage
// equals the two-pass naive construction structurally on Example 3.3.
func TestNLineageOfStreamedEqualsNaive(t *testing.T) {
	db := example33DB(t)
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.C("a3")),
		rel.NewAtom("S", rel.C("a3")),
	)
	streamed, err := NLineageOf(db, q)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NLineageOfNaive(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.True != naive.True || len(streamed.Conjuncts) != len(naive.Conjuncts) {
		t.Fatalf("streamed %s vs naive %s", streamed, naive)
	}
	for i := range streamed.Conjuncts {
		if !streamed.Conjuncts[i].Equal(naive.Conjuncts[i]) {
			t.Fatalf("conjunct %d differs: %v vs %v", i, streamed.Conjuncts[i], naive.Conjuncts[i])
		}
	}
}
