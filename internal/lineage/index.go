// Interned lineage indices: a DNF re-expressed over dense uint32 slots
// with per-conjunct bitsets and an element→conjuncts occurrence index.
// The exact solvers (internal/exact) run entirely on this
// representation — coverage checks become single AND-popcount passes
// over a handful of words instead of map probes over TupleID sets —
// and one Index built per lineage is shared by every per-cause search,
// the greedy estimator, and the brute-force oracle's evaluation loop.
//
// An Index is immutable after NewIndex and safe for concurrent use.

package lineage

import (
	"math/bits"
	"sort"

	"github.com/querycause/querycause/internal/rel"
)

// Bits is a dense bitset over uint32 indices, stored as 64-bit words.
// All binary operations assume equal length (bitsets over the same
// universe).
type Bits []uint64

// NewBits returns a zeroed bitset able to hold indices [0, n).
func NewBits(n int) Bits { return make(Bits, (n+63)/64) }

// Set sets bit i.
func (b Bits) Set(i uint32) { b[i>>6] |= 1 << (i & 63) }

// Clear clears bit i.
func (b Bits) Clear(i uint32) { b[i>>6] &^= 1 << (i & 63) }

// Has reports whether bit i is set.
func (b Bits) Has(i uint32) bool { return b[i>>6]&(1<<(i&63)) != 0 }

// Zero clears every bit.
func (b Bits) Zero() {
	for i := range b {
		b[i] = 0
	}
}

// Copy overwrites b with o.
func (b Bits) Copy(o Bits) { copy(b, o) }

// Or sets b to b ∪ o.
func (b Bits) Or(o Bits) {
	for i, w := range o {
		b[i] |= w
	}
}

// AndNot sets b to b ∖ o.
func (b Bits) AndNot(o Bits) {
	for i, w := range o {
		b[i] &^= w
	}
}

// Intersects reports whether b ∩ o is non-empty (one AND pass, no
// allocation).
func (b Bits) Intersects(o Bits) bool {
	for i, w := range o {
		if b[i]&w != 0 {
			return true
		}
	}
	return false
}

// IntersectCount returns |b ∩ o| (one AND-popcount pass).
func (b Bits) IntersectCount(o Bits) int {
	n := 0
	for i, w := range o {
		n += bits.OnesCount64(b[i] & w)
	}
	return n
}

// SubsetOf reports whether b ⊆ o.
func (b Bits) SubsetOf(o Bits) bool {
	for i, w := range b {
		if w&^o[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether b and o hold the same bits.
func (b Bits) Equal(o Bits) bool {
	for i, w := range b {
		if w != o[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// AppendKey appends a fixed-width byte encoding of b to dst, for use
// as a map key (e.g. the solver's uncovered-signature memo table).
func (b Bits) AppendKey(dst []byte) []byte {
	for _, w := range b {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// Index interns a DNF's tuple IDs into dense uint32 slots and
// precomputes, per conjunct, the slot list and slot bitset, plus the
// element→conjuncts occurrence index. Slot order follows ascending
// TupleID, so slot comparisons and ID comparisons agree.
type Index struct {
	ids       []rel.TupleID // slot → tuple ID, ascending
	conjSlots [][]uint32    // conjunct → sorted slots
	conjBits  []Bits        // conjunct → slot bitset
	occ       [][]uint32    // slot → ascending conjunct indexes containing it
	words     int           // words per slot bitset
}

// NewIndex builds the interned index of d. The DNF is taken as given —
// callers wanting minimal-lineage semantics minimize (RemoveRedundant)
// first. A True or empty DNF yields an index with zero conjuncts.
func NewIndex(d DNF) *Index {
	ix := &Index{}
	if d.True {
		return ix
	}
	seen := make(map[rel.TupleID]bool)
	for _, c := range d.Conjuncts {
		for _, id := range c {
			if !seen[id] {
				seen[id] = true
				ix.ids = append(ix.ids, id)
			}
		}
	}
	sort.Slice(ix.ids, func(i, j int) bool { return ix.ids[i] < ix.ids[j] })
	ix.words = (len(ix.ids) + 63) / 64
	ix.occ = make([][]uint32, len(ix.ids))
	ix.conjSlots = make([][]uint32, len(d.Conjuncts))
	ix.conjBits = make([]Bits, len(d.Conjuncts))
	for ci, c := range d.Conjuncts {
		slots := make([]uint32, len(c))
		bs := NewBits(len(ix.ids))
		for i, id := range c {
			s, _ := ix.Slot(id)
			slots[i] = s
			bs.Set(s)
			ix.occ[s] = append(ix.occ[s], uint32(ci))
		}
		// Conjuncts are sorted TupleID sets, so slots are sorted too.
		ix.conjSlots[ci] = slots
		ix.conjBits[ci] = bs
	}
	return ix
}

// NumVars returns the number of distinct tuple variables (slots).
func (ix *Index) NumVars() int { return len(ix.ids) }

// NumConjuncts returns the number of conjuncts.
func (ix *Index) NumConjuncts() int { return len(ix.conjSlots) }

// Words returns the word width of slot bitsets over this index.
func (ix *Index) Words() int { return ix.words }

// ID returns the tuple ID interned at slot s.
func (ix *Index) ID(s uint32) rel.TupleID { return ix.ids[s] }

// Slot returns the slot of tuple id, if interned.
func (ix *Index) Slot(id rel.TupleID) (uint32, bool) {
	i := sort.Search(len(ix.ids), func(i int) bool { return ix.ids[i] >= id })
	if i < len(ix.ids) && ix.ids[i] == id {
		return uint32(i), true
	}
	return 0, false
}

// ConjunctSlots returns conjunct c's sorted slot list. Callers must
// not mutate it.
func (ix *Index) ConjunctSlots(c int) []uint32 { return ix.conjSlots[c] }

// ConjunctBits returns conjunct c's slot bitset. Callers must not
// mutate it.
func (ix *Index) ConjunctBits(c int) Bits { return ix.conjBits[c] }

// Occurrences returns the ascending conjunct indexes containing slot
// s. Callers must not mutate it.
func (ix *Index) Occurrences(s uint32) []uint32 { return ix.occ[s] }

// NewSlotBits returns a zeroed bitset over the index's slots.
func (ix *Index) NewSlotBits() Bits { return NewBits(len(ix.ids)) }

// NewConjunctBits returns a zeroed bitset over the index's conjuncts.
func (ix *Index) NewConjunctBits() Bits { return NewBits(len(ix.conjSlots)) }

// SatisfiableWithout reports whether some conjunct is disjoint from
// the removed slot set — the bitset form of DNF.EvalWithout, one
// AND pass per conjunct.
func (ix *Index) SatisfiableWithout(removed Bits) bool {
	for _, bs := range ix.conjBits {
		if !bs.Intersects(removed) {
			return true
		}
	}
	return false
}
