package whyno

import (
	"math/rand"
	"testing"

	"github.com/querycause/querycause/internal/rel"
)

// whyNotInstance: real database R(a,b) (exogenous); candidates
// S(b), S(c) (endogenous); q :- R(x,y), S(y) is a non-answer on Dˣ.
func whyNotInstance() (*rel.Database, *rel.Query, rel.TupleID, rel.TupleID) {
	db := rel.NewDatabase()
	db.MustAdd("R", false, "a", "b")
	sb := db.MustAdd("S", true, "b")
	sc := db.MustAdd("S", true, "c")
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y")))
	return db, q, sb, sc
}

func TestCheckInstance(t *testing.T) {
	db, q, _, _ := whyNotInstance()
	if err := CheckInstance(db, q); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	// Already an answer: add exogenous S(b).
	db2 := rel.NewDatabase()
	db2.MustAdd("R", false, "a", "b")
	db2.MustAdd("S", false, "b")
	db2.MustAdd("S", true, "c")
	if err := CheckInstance(db2, q); err == nil {
		t.Error("expected rejection: q holds on Dˣ")
	}
	// Unreachable: no candidate makes it true.
	db3 := rel.NewDatabase()
	db3.MustAdd("R", false, "a", "b")
	db3.MustAdd("S", true, "z")
	if err := CheckInstance(db3, q); err == nil {
		t.Error("expected rejection: q unreachable")
	}
	// Non-Boolean query.
	hq := &rel.Query{Name: "q", Head: []rel.Term{rel.V("x")}, Atoms: q.Atoms}
	if err := CheckInstance(db, hq); err == nil {
		t.Error("expected rejection: non-Boolean")
	}
}

func TestCausesAndResponsibility(t *testing.T) {
	db, q, sb, sc := whyNotInstance()
	causes, err := Causes(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(causes) != 1 || causes[0] != sb {
		t.Fatalf("causes = %v, want [S(b)]", causes)
	}
	// S(b) is a counterfactual Why-No cause: inserting it alone yields
	// the answer.
	rho, err := Responsibility(db, q, sb)
	if err != nil {
		t.Fatal(err)
	}
	if rho != 1 {
		t.Errorf("ρ(S(b)) = %v, want 1", rho)
	}
	rho, err = Responsibility(db, q, sc)
	if err != nil {
		t.Fatal(err)
	}
	if rho != 0 {
		t.Errorf("ρ(S(c)) = %v, want 0", rho)
	}
}

// TestTwoInsertions: a non-answer needing two insertions gives ρ = 1/2.
func TestTwoInsertions(t *testing.T) {
	db := rel.NewDatabase()
	rb := db.MustAdd("R", true, "a", "b") // candidate
	sb := db.MustAdd("S", true, "b")      // candidate
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y")))
	if err := CheckInstance(db, q); err != nil {
		t.Fatal(err)
	}
	for _, id := range []rel.TupleID{rb, sb} {
		size, ok, err := MinContingency(db, q, id)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || size != 1 {
			t.Errorf("tuple %v: size=%d ok=%v, want 1 (insert the other)", db.Tuple(id), size, ok)
		}
	}
}

// TestClosedFormMatchesBruteForce fuzzes the 1/min-conjunct formula
// against definition-level enumeration.
func TestClosedFormMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z")),
	)
	dom := []rel.Value{"0", "1", "2"}
	checked := 0
	for trial := 0; trial < 100 && checked < 25; trial++ {
		db := rel.NewDatabase()
		for _, spec := range []struct {
			name  string
			arity int
		}{{"R", 2}, {"S", 2}, {"T", 1}} {
			for i := 0; i < 2; i++ { // sparse real data
				args := make([]rel.Value, spec.arity)
				for j := range args {
					args[j] = dom[rng.Intn(3)]
				}
				db.MustAdd(spec.name, false, args...)
			}
			for i := 0; i < 4; i++ { // candidates
				args := make([]rel.Value, spec.arity)
				for j := range args {
					args[j] = dom[rng.Intn(3)]
				}
				db.MustAdd(spec.name, true, args...)
			}
		}
		if CheckInstance(db, q) != nil {
			continue
		}
		checked++
		causes, err := Causes(db, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range causes {
			got, gotOK, err := MinContingency(db, q, id)
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK, err := BruteForceMinContingency(db, q, id)
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != wantOK || got != want {
				t.Fatalf("tuple %v: closed=(%d,%v) brute=(%d,%v)\ndb:\n%v",
					db.Tuple(id), got, gotOK, want, wantOK, db)
			}
			// Theorem 4.17's bound.
			if got > len(q.Atoms)-1 {
				t.Fatalf("contingency %d > m-1", got)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no valid instances generated")
	}
}

func TestPotentialTuples(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", false, "a", "b")
	db.MustAdd("S", false, "a")
	ids, err := PotentialTuples(db, "S", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Active domain {a,b}; S has (a); candidate: (b).
	if len(ids) != 1 || db.Tuple(ids[0]).Args[0] != "b" {
		t.Fatalf("candidates = %v", ids)
	}
	if !db.Tuple(ids[0]).Endo {
		t.Error("candidates must be endogenous")
	}
	// Limit honored.
	ids2, err := PotentialTuples(db, "R", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids2) != 2 {
		t.Fatalf("limited candidates = %d, want 2", len(ids2))
	}
	if _, err := PotentialTuples(db, "Nope", 0); err == nil {
		t.Error("expected unknown-relation error")
	}
}
