// Package whyno implements Why-No causality and responsibility
// (Sections 2 and 4.2 of Meliou et al., VLDB 2010): explaining why a
// tuple is NOT an answer.
//
// A Why-No instance is a database whose exogenous tuples are the real
// database Dˣ and whose endogenous tuples are the candidate missing
// tuples Dⁿ (computing Dⁿ itself is outside the paper's scope — see
// Huang et al., PVLDB 2008 — but PotentialTuples offers an
// active-domain generator for examples). The query must be false on Dˣ
// and true on Dˣ ∪ Dⁿ.
//
// Causes are computed with the same n-lineage criterion as Why-So
// (Theorem 3.2 applies uniformly). Responsibility is PTIME (Theorem
// 4.17): a contingency Γ for t is a set of insertions with
// Dˣ ∪ Γ ⊭ q and Dˣ ∪ Γ ∪ {t} ⊨ q, so the minimal Γ is C∖{t} for the
// smallest non-redundant conjunct C of Φⁿ containing t (non-redundancy
// guarantees no sub-conjunct fires without t), giving
// ρ_t = 1/|C| ≥ 1/m.
package whyno

import (
	"fmt"

	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/qerr"
	"github.com/querycause/querycause/internal/rel"
)

// CheckInstance validates the Why-No setting: q must be false on the
// exogenous part alone and true once the candidate tuples are added.
// Violations are tagged qerr.ErrInvalidWhyNo so callers — local and
// over the wire — can branch with errors.Is.
func CheckInstance(db *rel.Database, q *rel.Query) error {
	if !q.IsBoolean() {
		return qerr.Tag(qerr.ErrInvalidWhyNo, fmt.Errorf("whyno: query %s is not Boolean; bind the non-answer first", q.Name))
	}
	removedEndo := make(map[rel.TupleID]bool)
	for _, id := range db.EndoIDs() {
		removedEndo[id] = true
	}
	onDx, err := rel.HoldsWithout(db, q, removedEndo)
	if err != nil {
		return err
	}
	if onDx {
		return qerr.Tag(qerr.ErrInvalidWhyNo, fmt.Errorf("whyno: %s already holds on the real database; it is not a non-answer", q.Name))
	}
	onAll, err := rel.Holds(db, q)
	if err != nil {
		return err
	}
	if !onAll {
		return qerr.Tag(qerr.ErrInvalidWhyNo, fmt.Errorf("whyno: %s does not hold even with all candidate tuples; no causes exist", q.Name))
	}
	return nil
}

// Causes returns the Why-No causes: candidate tuples occurring in a
// non-redundant conjunct of the n-lineage (Theorem 3.2, Why-No case).
func Causes(db *rel.Database, q *rel.Query) ([]rel.TupleID, error) {
	return lineage.Causes(db, q)
}

// MinContingency returns the size of the smallest insertion set Γ
// making t counterfactual for the non-answer: |C|-1 for the smallest
// minimal conjunct C containing t. ok=false means t is not a Why-No
// cause.
func MinContingency(db *rel.Database, q *rel.Query, t rel.TupleID) (int, bool, error) {
	n, err := lineage.NLineageOf(db, q)
	if err != nil {
		return 0, false, err
	}
	if n.True {
		return 0, false, nil
	}
	size, ok := MinContingencyDNF(n, t)
	return size, ok, nil
}

// MinContingencyDNF is MinContingency on a precomputed minimal
// n-lineage.
func MinContingencyDNF(n lineage.DNF, t rel.TupleID) (int, bool) {
	set, ok := MinContingencySetDNF(n, t)
	if !ok {
		return 0, false
	}
	return len(set), true
}

// MinContingencySetDNF returns an actual minimum insertion set: the
// smallest minimal conjunct containing t, minus t itself (sorted).
func MinContingencySetDNF(n lineage.DNF, t rel.TupleID) ([]rel.TupleID, bool) {
	var best lineage.Conjunct
	for _, c := range n.ConjunctsWith(t) {
		if best == nil || len(c) < len(best) {
			best = c
		}
	}
	if best == nil {
		return nil, false
	}
	out := make([]rel.TupleID, 0, len(best)-1)
	for _, id := range best {
		if id != t {
			out = append(out, id)
		}
	}
	return out, true
}

// Responsibility computes the Why-No responsibility ρ_t = 1/(1+min|Γ|),
// or 0 if t is not a cause.
func Responsibility(db *rel.Database, q *rel.Query, t rel.TupleID) (float64, error) {
	size, ok, err := MinContingency(db, q, t)
	if err != nil || !ok {
		return 0, err
	}
	return 1 / (1 + float64(size)), nil
}

// BruteForceMinContingency is the definition-level oracle: it
// enumerates insertion sets Γ ⊆ Dⁿ∖{t} by increasing size and returns
// the first Γ with Dˣ ∪ Γ ⊭ q and Dˣ ∪ Γ ∪ {t} ⊨ q. Exponential;
// for tests.
func BruteForceMinContingency(db *rel.Database, q *rel.Query, t rel.TupleID) (int, bool, error) {
	n, err := lineage.NLineageOf(db, q)
	if err != nil {
		return 0, false, err
	}
	if n.True {
		return 0, false, nil
	}
	var universe []rel.TupleID
	for _, id := range db.EndoIDs() {
		if id != t {
			universe = append(universe, id)
		}
	}
	// Presence semantics: a conjunct fires iff all its (endogenous)
	// variables are inserted.
	present := make(map[rel.TupleID]bool)
	fires := func() bool {
	outer:
		for _, c := range n.Conjuncts {
			for _, id := range c {
				if !present[id] {
					continue outer
				}
			}
			return true
		}
		return false
	}
	valid := func() bool {
		if fires() {
			return false // q already true without t
		}
		present[t] = true
		ok := fires()
		delete(present, t)
		return ok
	}
	var search func(start, k int) bool
	search = func(start, k int) bool {
		if k == 0 {
			return valid()
		}
		for i := start; i <= len(universe)-k; i++ {
			present[universe[i]] = true
			if search(i+1, k-1) {
				delete(present, universe[i])
				return true
			}
			delete(present, universe[i])
		}
		return false
	}
	for k := 0; k <= len(universe); k++ {
		if search(0, k) {
			return k, true, nil
		}
	}
	return 0, false, nil
}

// PotentialTuples inserts as endogenous candidates every tuple over the
// active domain missing from the named relation, up to limit (0 = no
// limit). It returns the inserted IDs. This is a convenience for
// examples; real systems derive Dⁿ from provenance of non-answers.
func PotentialTuples(db *rel.Database, relName string, limit int) ([]rel.TupleID, error) {
	r := db.Relation(relName)
	if r == nil {
		return nil, fmt.Errorf("whyno: unknown relation %s", relName)
	}
	existing := make(map[string]bool)
	for _, t := range r.Tuples() {
		existing[joinKey(t.Args)] = true
	}
	adom := db.ActiveDomain()
	args := make([]rel.Value, r.Arity)
	var out []rel.TupleID
	var gen func(pos int) error
	gen = func(pos int) error {
		if limit > 0 && len(out) >= limit {
			return nil
		}
		if pos == r.Arity {
			if existing[joinKey(args)] {
				return nil
			}
			id, err := db.Add(relName, true, args...)
			if err != nil {
				return err
			}
			out = append(out, id)
			return nil
		}
		for _, v := range adom {
			args[pos] = v
			if err := gen(pos + 1); err != nil {
				return err
			}
			if limit > 0 && len(out) >= limit {
				return nil
			}
		}
		return nil
	}
	if err := gen(0); err != nil {
		return nil, err
	}
	return out, nil
}

func joinKey(vs []rel.Value) string {
	out := ""
	for _, v := range vs {
		out += string(v) + "\x00"
	}
	return out
}
