package exact

import (
	"testing"

	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/rel"
)

// fuzzDNF decodes raw bytes into a small DNF: each byte's low 7 bits
// are one conjunct's variable set over variables 0..6, zero bytes
// skipped, at most 14 conjuncts. Arbitrary inputs reach duplicate,
// subset and superset conjuncts — exactly the shapes the solver's
// preprocessing and protection dedupe must not get wrong.
func fuzzDNF(raw []byte) lineage.DNF {
	var d lineage.DNF
	for _, b := range raw {
		if len(d.Conjuncts) >= 14 {
			break
		}
		bits := int(b) & 127
		if bits == 0 {
			continue
		}
		var ids []rel.TupleID
		for v := 0; v < 7; v++ {
			if bits&(1<<v) != 0 {
				ids = append(ids, rel.TupleID(v))
			}
		}
		d.Conjuncts = append(d.Conjuncts, lineage.NewConjunct(ids...))
	}
	return d
}

// fuzzVariants is every Options configuration the fuzz targets sweep:
// the default plus each optimization toggled off, plus the bare
// branch and bound.
var fuzzVariants = []Options{
	{},
	{DisableGreedySeed: true},
	{DisablePreprocess: true},
	{DisableMemo: true},
	{DisablePackingBound: true},
	{DisableGreedySeed: true, DisablePreprocess: true, DisableMemo: true, DisablePackingBound: true},
}

// FuzzExactIndex drives the indexed branch-and-bound over arbitrary
// (including non-minimal) DNFs: under every Options configuration the
// solver must agree with the definition-level brute force on
// (size, causehood), and every returned set must be witness-valid —
// the lineage survives removing Γ and dies removing Γ ∪ {t}.
//
//	go test ./internal/exact -run '^$' -fuzz FuzzExactIndex
func FuzzExactIndex(f *testing.F) {
	// The greedy non-minimal regression shape, a counterfactual, and a
	// disjoint-target pattern.
	f.Add([]byte{0b0000011, 0b0000010, 0b0001101}, uint8(0))
	f.Add([]byte{1, 2, 4, 8, 16, 32, 64}, uint8(3))
	f.Add([]byte{127, 21, 42, 85}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, tv uint8) {
		d := fuzzDNF(raw)
		if len(d.Conjuncts) == 0 {
			t.Skip()
		}
		v := rel.TupleID(tv % 7)
		want, wantOK := BruteForceMinContingency(d, v)
		for _, opts := range fuzzVariants {
			set, ok := MinContingencySetOpts(d, v, opts)
			if ok != wantOK || (ok && len(set) != want) {
				t.Fatalf("DNF %v var %d opts %+v: exact=(%d,%v) brute=(%d,%v)", d, v, opts, len(set), ok, want, wantOK)
			}
			if !ok {
				continue
			}
			removed := make(map[rel.TupleID]bool, len(set)+1)
			for _, id := range set {
				if id == v || removed[id] {
					t.Fatalf("DNF %v var %d opts %+v: malformed contingency %v", d, v, opts, set)
				}
				removed[id] = true
			}
			if !d.EvalWithout(removed) {
				t.Fatalf("DNF %v var %d opts %+v: lineage dies removing Γ=%v alone", d, v, opts, set)
			}
			removed[v] = true
			if d.EvalWithout(removed) {
				t.Fatalf("DNF %v var %d opts %+v: lineage survives removing Γ∪{t}, Γ=%v", d, v, opts, set)
			}
		}
	})
}
