// Package exact computes minimum contingency sets (and hence
// responsibilities, Definition 2.3 of Meliou et al., VLDB 2010) by
// exact search. It is exponential in the worst case — responsibility
// is NP-hard for non-weakly-linear queries (Theorem 4.1) — and serves
// three roles: the solver for hard queries on moderate instances, the
// correctness oracle for the polynomial flow algorithm, and the
// baseline in the scaling benchmarks.
//
// The search works on the minimal endogenous lineage Φⁿ: a contingency
// Γ for tuple t must (i) leave some conjunct containing t intact — the
// "protected" conjunct — and (ii) hit every conjunct not containing t.
// Minimizing over protected conjuncts reduces the problem to minimum
// hitting set with forbidden elements (the causality ↔ minimal
// hitting set connection Salimi & Bertossi make explicit).
//
// # The indexed solver
//
// The solver runs on a lineage.Index: tuple IDs interned into dense
// uint32 slots, conjuncts precomputed as []uint64 bitsets with an
// element→conjuncts occurrence index. "Covered", "forbidden" and
// "chosen" are bitset words, coverage is maintained incrementally by
// per-target hit counters (never rescanned per node), and branching
// is over the uncovered target with the fewest alternatives. On top
// of the core, four independently toggleable optimizations (Options):
//
//   - per-subproblem preprocessing: duplicate/superset target
//     elimination, unit propagation for singleton targets, and
//     element-dominance removal;
//   - a greedy seed: GreedyMinContingency's solution primes the upper
//     bound, shared across all protected-conjunct subproblems, which
//     are searched best-first by greedy estimate;
//   - a memo table keyed by the uncovered-target signature, collapsing
//     the symmetric subtrees of self-similar families like the star
//     h₁*;
//   - a disjoint-target packing lower bound (one AND-popcount pass
//     per node).
//
// Identical protectable conjuncts are deduplicated before searching,
// so self-join lineages run each subproblem once. One Index per
// lineage also backs GreedyMinContingency and the brute-force
// oracle's evaluation loop; build it once per lineage (core.Engine
// does) and call the *Index entry points to amortize it across
// causes.
package exact

import (
	"sort"

	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/rel"
)

// Options tunes the branch-and-bound search; the zero value is the
// default (fully optimized) configuration. Each field disables one
// optimization independently — the ablation benchmarks
// (BENCH_exact.json, `go run ./cmd/experiments -run exactcurve`)
// record the cost of every toggle, and the differential harness
// asserts that no toggle changes any answer.
type Options struct {
	// DisablePackingBound turns off the disjoint-target packing lower
	// bound, leaving only the depth-vs-best pruning.
	DisablePackingBound bool
	// DisablePreprocess turns off per-subproblem preprocessing:
	// duplicate/superset target elimination, unit propagation for
	// singleton targets, and element-dominance removal.
	DisablePreprocess bool
	// DisableMemo turns off the memo table keyed by the
	// uncovered-target signature (symmetric subtrees are re-searched).
	DisableMemo bool
	// DisableGreedySeed turns off seeding the upper bound with the
	// greedy solution and the best-first ordering of protected
	// conjuncts by greedy estimate.
	DisableGreedySeed bool
}

// MinContingency computes the size of the smallest contingency set for
// tuple t over the n-lineage d. It returns ok=false when t is not an
// actual cause (no conjunct of d contains t, or d is the constant
// true).
func MinContingency(d lineage.DNF, t rel.TupleID) (size int, ok bool) {
	return MinContingencyOpts(d, t, Options{})
}

// MinContingencyOpts is MinContingency with explicit search options.
func MinContingencyOpts(d lineage.DNF, t rel.TupleID, opts Options) (size int, ok bool) {
	set, ok := MinContingencySetOpts(d, t, opts)
	return len(set), ok
}

// MinContingencySet returns an actual minimum contingency set for t
// (sorted), not just its size: removing exactly these tuples makes t
// counterfactual. ok=false when t is not an actual cause. The empty
// set with ok=true means t is already counterfactual.
func MinContingencySet(d lineage.DNF, t rel.TupleID) ([]rel.TupleID, bool) {
	return MinContingencySetOpts(d, t, Options{})
}

// MinContingencySetOpts is MinContingencySet with explicit options.
// The DNF is minimized (RemoveRedundant) and interned into a fresh
// lineage.Index first; callers explaining many causes over one
// lineage should build the Index once and use MinContingencySetIndex.
func MinContingencySetOpts(d lineage.DNF, t rel.TupleID, opts Options) ([]rel.TupleID, bool) {
	if d.True {
		return nil, false
	}
	return MinContingencySetIndex(lineage.NewIndex(lineage.RemoveRedundant(d)), t, opts)
}

// MinContingencyIndex is MinContingencySetIndex returning only the
// size.
func MinContingencyIndex(ix *lineage.Index, t rel.TupleID, opts Options) (int, bool) {
	set, ok := MinContingencySetIndex(ix, t, opts)
	return len(set), ok
}

// MinContingencySetIndex computes an actual minimum contingency set
// for t over an interned lineage, reusing the index's precomputed
// bitsets. The index should be built over the minimal
// (redundancy-free) lineage; the result is correct for any DNF, but
// redundant conjuncts cost search time. The index is read-only and
// may be shared by concurrent calls.
func MinContingencySetIndex(ix *lineage.Index, t rel.TupleID, opts Options) ([]rel.TupleID, bool) {
	tslot, ok := ix.Slot(t)
	if !ok || ix.NumConjuncts() == 0 {
		return nil, false
	}
	s := &searcher{ix: ix, tslot: tslot, opts: opts, best: -1}
	s.run()
	if s.best < 0 {
		return nil, false
	}
	out := make([]rel.TupleID, len(s.bestSet))
	for i, e := range s.bestSet {
		out[i] = ix.ID(e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// Responsibility computes ρ_t = 1/(1+min|Γ|), or 0 if t is not a cause.
func Responsibility(d lineage.DNF, t rel.TupleID) float64 {
	size, ok := MinContingency(d, t)
	if !ok {
		return 0
	}
	return 1 / (1 + float64(size))
}

// MinContingencyDB computes the minimum contingency for t of the Boolean
// query q on db, going through the lineage pipeline. ok=false means t is
// not an actual cause.
func MinContingencyDB(db *rel.Database, q *rel.Query, t rel.TupleID) (int, bool, error) {
	n, err := lineage.NLineageOf(db, q)
	if err != nil {
		return 0, false, err
	}
	size, ok := MinContingency(n, t)
	return size, ok, nil
}

// BruteForceMinContingency is the definition-level oracle: it enumerates
// candidate contingency sets Γ ⊆ vars(Φⁿ)\{t} in order of increasing
// size and returns the first valid one's size. A Γ is valid when the
// n-lineage stays satisfiable without Γ and becomes unsatisfiable
// without Γ∪{t} (Theorem 3.2, condition 2).
//
// Exponential in the lineage's variable count; intended for tests on
// small instances. The evaluation loop runs on a lineage.Index
// (bitset satisfiability checks); oracle loops over one lineage
// should build the Index once and call the Index form.
func BruteForceMinContingency(d lineage.DNF, t rel.TupleID) (int, bool) {
	if d.True {
		return 0, false
	}
	return BruteForceMinContingencyIndex(lineage.NewIndex(d), t)
}

// BruteForceMinContingencyIndex is BruteForceMinContingency over a
// prebuilt index of the same DNF.
func BruteForceMinContingencyIndex(ix *lineage.Index, t rel.TupleID) (int, bool) {
	if ix.NumConjuncts() == 0 {
		return 0, false
	}
	tslot, ok := ix.Slot(t)
	if !ok {
		// t occurs nowhere: removing it never changes the lineage, so no
		// Γ can be both satisfiability-preserving and t-killing.
		return 0, false
	}
	universe := make([]uint32, 0, ix.NumVars()-1)
	for s := uint32(0); s < uint32(ix.NumVars()); s++ {
		if s != tslot {
			universe = append(universe, s)
		}
	}
	removed := ix.NewSlotBits()
	valid := func() bool {
		if !ix.SatisfiableWithout(removed) {
			return false
		}
		removed.Set(tslot)
		dead := !ix.SatisfiableWithout(removed)
		removed.Clear(tslot)
		return dead
	}
	// Size 0 upward, subsets in lexicographic order (the first valid
	// size is the answer; order keeps the oracle deterministic).
	var search func(start, k int) bool
	search = func(start, k int) bool {
		if k == 0 {
			return valid()
		}
		for i := start; i <= len(universe)-k; i++ {
			s := universe[i]
			removed.Set(s)
			if search(i+1, k-1) {
				removed.Clear(s)
				return true
			}
			removed.Clear(s)
		}
		return false
	}
	for k := 0; k <= len(universe); k++ {
		if search(0, k) {
			return k, true
		}
	}
	return 0, false
}

// GreedyMinContingency computes an upper bound on the minimum
// contingency by greedy hitting: protect a conjunct containing t, then
// repeatedly pick the allowed element covering the most uncovered
// targets. Used as a polynomial-time baseline and as the exact
// solver's seed bound; not exact — but it over-approximates only: it
// reports ok on exactly the actual causes, and its size is never below
// the true minimum.
//
// The input is minimized first (RemoveRedundant). On a non-minimal
// DNF, a conjunct containing t may strictly contain a target conjunct,
// which would make that protection choice infeasible; minimization
// rules this out, and every remaining protection choice is tried so a
// single unlucky pick cannot misreport a cause as a non-cause (a bug
// the differential harness's DNF fuzzing surfaced; see
// internal/difftest/testdata/greedy_nonminimal.dnf).
func GreedyMinContingency(d lineage.DNF, t rel.TupleID) (int, bool) {
	d = lineage.RemoveRedundant(d)
	if d.True {
		return 0, false
	}
	return GreedyMinContingencyIndex(lineage.NewIndex(d), t)
}

// GreedyMinContingencyIndex is GreedyMinContingency over a prebuilt
// index. The index must be built over a minimal (redundancy-free)
// DNF — on non-minimal lineages greedy can misreport causes as
// non-causes; use the DNF form, which minimizes first.
func GreedyMinContingencyIndex(ix *lineage.Index, t rel.TupleID) (int, bool) {
	tslot, ok := ix.Slot(t)
	if !ok || ix.NumConjuncts() == 0 {
		return 0, false
	}
	best := -1
	for _, p := range protections(ix, tslot) {
		set, feasible := greedyProtection(ix, tslot, p)
		if feasible && (best < 0 || len(set) < best) {
			best = len(set)
			if best == 0 {
				break
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}
