// Package exact computes minimum contingency sets (and hence
// responsibilities, Definition 2.3 of Meliou et al., VLDB 2010) by
// exhaustive search. It is exponential in the worst case — responsibility
// is NP-hard for non-weakly-linear queries (Theorem 4.1) — and serves
// three roles: the solver for hard queries on moderate instances, the
// correctness oracle for the polynomial flow algorithm, and the baseline
// in the scaling benchmarks.
//
// The search works on the minimal endogenous lineage Φⁿ: a contingency Γ
// for tuple t must (i) leave some conjunct containing t intact — the
// "protected" conjunct — and (ii) hit every conjunct not containing t.
// Minimizing over protected conjuncts reduces the problem to minimum
// hitting set with forbidden elements, solved by branch and bound.
package exact

import (
	"sort"

	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/rel"
)

// Options tunes the branch-and-bound search; the zero value is the
// default configuration. Used by the ablation benchmarks.
type Options struct {
	// DisablePackingBound turns off the disjoint-target packing lower
	// bound, leaving only the depth-vs-best pruning.
	DisablePackingBound bool
}

// MinContingency computes the size of the smallest contingency set for
// tuple t over the minimal (redundancy-free) n-lineage d. It returns
// ok=false when t is not an actual cause (no conjunct of d contains t,
// or d is the constant true).
func MinContingency(d lineage.DNF, t rel.TupleID) (size int, ok bool) {
	return MinContingencyOpts(d, t, Options{})
}

// MinContingencyOpts is MinContingency with explicit search options.
func MinContingencyOpts(d lineage.DNF, t rel.TupleID, opts Options) (size int, ok bool) {
	set, ok := MinContingencySetOpts(d, t, opts)
	return len(set), ok
}

// MinContingencySet returns an actual minimum contingency set for t
// (sorted), not just its size: removing exactly these tuples makes t
// counterfactual. ok=false when t is not an actual cause. The empty set
// with ok=true means t is already counterfactual.
func MinContingencySet(d lineage.DNF, t rel.TupleID) ([]rel.TupleID, bool) {
	return MinContingencySetOpts(d, t, Options{})
}

// MinContingencySetOpts is MinContingencySet with explicit options.
func MinContingencySetOpts(d lineage.DNF, t rel.TupleID, opts Options) ([]rel.TupleID, bool) {
	if d.True {
		return nil, false
	}
	protectable := d.ConjunctsWith(t)
	if len(protectable) == 0 {
		return nil, false
	}
	// Conjuncts not containing t must be hit.
	var targets []lineage.Conjunct
	for _, c := range d.Conjuncts {
		if !c.Contains(t) {
			targets = append(targets, c)
		}
	}
	best := -1
	var bestSet []rel.TupleID
	for _, p := range protectable {
		forbidden := make(map[rel.TupleID]bool, len(p)+1)
		for _, id := range p {
			forbidden[id] = true
		}
		forbidden[t] = true
		ub := best // prune against the best found so far
		if set, feasible := minHittingSet(targets, forbidden, ub, opts); feasible {
			if best < 0 || len(set) < best {
				best = len(set)
				bestSet = set
			}
			if best == 0 {
				break
			}
		}
	}
	if best < 0 {
		return nil, false
	}
	sort.Slice(bestSet, func(i, j int) bool { return bestSet[i] < bestSet[j] })
	return bestSet, true
}

// Responsibility computes ρ_t = 1/(1+min|Γ|), or 0 if t is not a cause.
func Responsibility(d lineage.DNF, t rel.TupleID) float64 {
	size, ok := MinContingency(d, t)
	if !ok {
		return 0
	}
	return 1 / (1 + float64(size))
}

// minHittingSet finds a minimum set S of non-forbidden elements hitting
// every target, with |S| strictly better than ub when ub >= 0. It
// returns feasible=false if some target consists solely of forbidden
// elements or the bound cannot be beaten.
func minHittingSet(targets []lineage.Conjunct, forbidden map[rel.TupleID]bool, ub int, opts Options) ([]rel.TupleID, bool) {
	// Reduce targets to allowed elements; sort by size for branching.
	reduced := make([][]rel.TupleID, 0, len(targets))
	for _, c := range targets {
		var allowed []rel.TupleID
		for _, id := range c {
			if !forbidden[id] {
				allowed = append(allowed, id)
			}
		}
		if len(allowed) == 0 {
			return nil, false
		}
		reduced = append(reduced, allowed)
	}
	best := -1
	if ub >= 0 {
		best = ub
	}
	var bestSet []rel.TupleID
	haveSet := false
	chosen := make(map[rel.TupleID]bool)

	var rec func(depth int)
	rec = func(depth int) {
		if best >= 0 && depth >= best {
			return
		}
		// Gather uncovered targets; pick the smallest for branching and
		// greedily pack pairwise-disjoint ones for a lower bound.
		var pick []rel.TupleID
		var uncovered [][]rel.TupleID
		for _, alts := range reduced {
			hit := false
			for _, id := range alts {
				if chosen[id] {
					hit = true
					break
				}
			}
			if !hit {
				uncovered = append(uncovered, alts)
				if pick == nil || len(alts) < len(pick) {
					pick = alts
				}
			}
		}
		if len(uncovered) == 0 {
			best = depth
			bestSet = bestSet[:0]
			for id := range chosen {
				bestSet = append(bestSet, id)
			}
			haveSet = true
			return
		}
		if best >= 0 && !opts.DisablePackingBound {
			// Disjoint targets need one element each: a packing lower
			// bound.
			used := make(map[rel.TupleID]bool)
			lb := 0
			for _, alts := range uncovered {
				disjoint := true
				for _, id := range alts {
					if used[id] {
						disjoint = false
						break
					}
				}
				if disjoint {
					lb++
					for _, id := range alts {
						used[id] = true
					}
				}
			}
			if depth+lb >= best {
				return
			}
		}
		for _, id := range pick {
			chosen[id] = true
			rec(depth + 1)
			delete(chosen, id)
		}
	}
	rec(0)
	if !haveSet {
		// Infeasible, or no improvement over the caller's bound: the
		// caller keeps its previous answer.
		return nil, false
	}
	return bestSet, true
}

// MinContingencyDB computes the minimum contingency for t of the Boolean
// query q on db, going through the lineage pipeline. ok=false means t is
// not an actual cause.
func MinContingencyDB(db *rel.Database, q *rel.Query, t rel.TupleID) (int, bool, error) {
	n, err := lineage.NLineageOf(db, q)
	if err != nil {
		return 0, false, err
	}
	size, ok := MinContingency(n, t)
	return size, ok, nil
}

// BruteForceMinContingency is the definition-level oracle: it enumerates
// candidate contingency sets Γ ⊆ vars(Φⁿ)\{t} in order of increasing
// size and returns the first valid one's size. A Γ is valid when the
// minimal n-lineage stays satisfiable without Γ and becomes
// unsatisfiable without Γ∪{t} (Theorem 3.2, condition 2).
//
// Exponential in the lineage's variable count; intended for tests on
// small instances.
func BruteForceMinContingency(d lineage.DNF, t rel.TupleID) (int, bool) {
	if d.True {
		return 0, false
	}
	vars := d.Vars()
	universe := vars[:0:0]
	for _, id := range vars {
		if id != t {
			universe = append(universe, id)
		}
	}
	removed := make(map[rel.TupleID]bool, len(universe)+1)
	valid := func() bool {
		if !d.EvalWithout(removed) {
			return false
		}
		removed[t] = true
		dead := !d.EvalWithout(removed)
		delete(removed, t)
		return dead
	}
	// Size 0 upward.
	var search func(start, k int) bool
	search = func(start, k int) bool {
		if k == 0 {
			return valid()
		}
		for i := start; i <= len(universe)-k; i++ {
			id := universe[i]
			removed[id] = true
			if search(i+1, k-1) {
				delete(removed, id)
				return true
			}
			delete(removed, id)
		}
		return false
	}
	for k := 0; k <= len(universe); k++ {
		if search(0, k) {
			return k, true
		}
	}
	return 0, false
}

// GreedyMinContingency computes an upper bound on the minimum
// contingency by greedy hitting: protect a conjunct containing t, then
// repeatedly pick the allowed element covering the most uncovered
// targets. Used as a polynomial-time baseline in benchmarks; not exact
// — but it over-approximates only: it reports ok on exactly the actual
// causes, and its size is never below the true minimum.
//
// The input is minimized first (RemoveRedundant). On a non-minimal
// DNF, a conjunct containing t may strictly contain a target conjunct,
// which would make that protection choice infeasible; minimization
// rules this out, and every remaining protection choice is tried so a
// single unlucky pick cannot misreport a cause as a non-cause (a bug
// the differential harness's DNF fuzzing surfaced; see
// internal/difftest/testdata/greedy_nonminimal.dnf).
func GreedyMinContingency(d lineage.DNF, t rel.TupleID) (int, bool) {
	d = lineage.RemoveRedundant(d)
	if d.True {
		return 0, false
	}
	protectable := d.ConjunctsWith(t)
	if len(protectable) == 0 {
		return 0, false
	}
	sort.Slice(protectable, func(i, j int) bool { return len(protectable[i]) < len(protectable[j]) })
	best := -1
	for _, p := range protectable {
		size, ok := greedyHit(d, t, p)
		if ok && (best < 0 || size < best) {
			best = size
			if best == 0 {
				break
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// greedyHit runs one greedy hitting pass with conjunct p protected:
// every conjunct not containing t must be hit by elements outside
// p ∪ {t}. ok=false when some target consists solely of forbidden
// elements (impossible on minimal DNFs, where no target is a subset of
// a protected conjunct).
func greedyHit(d lineage.DNF, t rel.TupleID, p lineage.Conjunct) (int, bool) {
	forbidden := make(map[rel.TupleID]bool, len(p)+1)
	for _, id := range p {
		forbidden[id] = true
	}
	forbidden[t] = true

	var targets [][]rel.TupleID
	for _, c := range d.Conjuncts {
		if c.Contains(t) {
			continue
		}
		var allowed []rel.TupleID
		for _, id := range c {
			if !forbidden[id] {
				allowed = append(allowed, id)
			}
		}
		if len(allowed) == 0 {
			return 0, false
		}
		targets = append(targets, allowed)
	}
	chosen := make(map[rel.TupleID]bool)
	size := 0
	for {
		counts := make(map[rel.TupleID]int)
		uncovered := 0
		for _, alts := range targets {
			hit := false
			for _, id := range alts {
				if chosen[id] {
					hit = true
					break
				}
			}
			if hit {
				continue
			}
			uncovered++
			for _, id := range alts {
				counts[id]++
			}
		}
		if uncovered == 0 {
			return size, true
		}
		var bestID rel.TupleID
		bestCount := -1
		for id, c := range counts {
			if c > bestCount || (c == bestCount && id < bestID) {
				bestID, bestCount = id, c
			}
		}
		chosen[bestID] = true
		size++
	}
}
