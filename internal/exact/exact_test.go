package exact

import (
	"math/rand"
	"testing"

	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/rel"
)

func TestCounterfactualIsZero(t *testing.T) {
	d := lineage.DNF{Conjuncts: []lineage.Conjunct{lineage.NewConjunct(1)}}
	size, ok := MinContingency(d, 1)
	if !ok || size != 0 {
		t.Fatalf("MinContingency = %d,%v; want 0,true", size, ok)
	}
	if rho := Responsibility(d, 1); rho != 1 {
		t.Fatalf("ρ = %v, want 1", rho)
	}
}

func TestSimpleHit(t *testing.T) {
	// Φⁿ = (t ∧ a) ∨ b: protect {t,a}, hit {b} → |Γ| = 1, ρ = 1/2.
	d := lineage.DNF{Conjuncts: []lineage.Conjunct{
		lineage.NewConjunct(1, 2),
		lineage.NewConjunct(3),
	}}
	size, ok := MinContingency(d, 1)
	if !ok || size != 1 {
		t.Fatalf("MinContingency = %d,%v; want 1,true", size, ok)
	}
}

func TestNotACause(t *testing.T) {
	d := lineage.DNF{Conjuncts: []lineage.Conjunct{lineage.NewConjunct(2)}}
	if _, ok := MinContingency(d, 1); ok {
		t.Fatal("tuple 1 is in no conjunct; not a cause")
	}
	if rho := Responsibility(d, 1); rho != 0 {
		t.Fatalf("ρ = %v, want 0", rho)
	}
	if _, ok := MinContingency(lineage.DNF{True: true}, 1); ok {
		t.Fatal("constant-true lineage has no causes")
	}
}

// TestExample2_2 replays Example 2.2 through the lineage pipeline:
// q(x) :- R(x,y),S(y) on the given instance; for answer a2, S(a1) is
// counterfactual; for answer a4, S(a3) is an actual cause with minimum
// contingency {S(a2)}.
func TestExample2_2(t *testing.T) {
	db := rel.NewDatabase()
	for _, row := range [][2]rel.Value{{"a1", "a5"}, {"a2", "a1"}, {"a3", "a3"}, {"a4", "a3"}, {"a4", "a2"}} {
		db.MustAdd("R", true, row[0], row[1])
	}
	sIDs := make(map[rel.Value]rel.TupleID)
	for _, v := range []rel.Value{"a1", "a2", "a3", "a4", "a6"} {
		sIDs[v] = db.MustAdd("S", true, v)
	}
	q := &rel.Query{Name: "q", Head: []rel.Term{rel.V("x")},
		Atoms: []rel.Atom{rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y"))}}

	qa2, _ := q.Bind("a2")
	n2, err := lineage.NLineageOf(db, qa2)
	if err != nil {
		t.Fatal(err)
	}
	if size, ok := MinContingency(n2, sIDs["a1"]); !ok || size != 0 {
		t.Errorf("S(a1) for a2: size=%d ok=%v, want counterfactual (0)", size, ok)
	}

	qa4, _ := q.Bind("a4")
	n4, err := lineage.NLineageOf(db, qa4)
	if err != nil {
		t.Fatal(err)
	}
	if size, ok := MinContingency(n4, sIDs["a3"]); !ok || size != 1 {
		t.Errorf("S(a3) for a4: size=%d ok=%v, want 1 (contingency {S(a2)})", size, ok)
	}
	if size, ok := MinContingency(n4, sIDs["a2"]); !ok || size != 1 {
		t.Errorf("S(a2) for a4: size=%d ok=%v, want 1", size, ok)
	}
	// S(a6) joins nothing: not a cause of a4.
	if _, ok := MinContingency(n4, sIDs["a6"]); ok {
		t.Error("S(a6) must not be a cause")
	}
}

// TestExample2_2Boolean replays the Boolean part of Example 2.2:
// q :- R(x,'a3'), S('a3') with R(a4,*) exogenous; Rⁿ(a3,a3) is not an
// actual cause.
func TestExample2_2Boolean(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", true, "a1", "a5")
	db.MustAdd("R", true, "a2", "a1")
	ra33 := db.MustAdd("R", true, "a3", "a3")
	db.MustAdd("R", false, "a4", "a3")
	db.MustAdd("R", false, "a4", "a2")
	sa3 := db.MustAdd("S", true, "a3")
	for _, v := range []rel.Value{"a1", "a2", "a4", "a6"} {
		db.MustAdd("S", true, v)
	}
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.C("a3")), rel.NewAtom("S", rel.C("a3")))
	n, err := lineage.NLineageOf(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := MinContingency(n, ra33); ok {
		t.Error("R(a3,a3) must not be an actual cause (Example 2.2)")
	}
	if size, ok := MinContingency(n, sa3); !ok || size != 0 {
		t.Errorf("S(a3) should be counterfactual; size=%d ok=%v", size, ok)
	}
}

func randomMinimalDNF(rng *rand.Rand, vars, conjuncts, maxLen int) lineage.DNF {
	var d lineage.DNF
	for i := 0; i < conjuncts; i++ {
		k := 1 + rng.Intn(maxLen)
		ids := make([]rel.TupleID, k)
		for j := range ids {
			ids[j] = rel.TupleID(rng.Intn(vars))
		}
		d.Conjuncts = append(d.Conjuncts, lineage.NewConjunct(ids...))
	}
	return lineage.RemoveRedundant(d)
}

// TestAgainstBruteForce fuzzes the branch-and-bound solver against the
// definition-level subset-enumeration oracle.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		d := randomMinimalDNF(rng, 8, 6, 3)
		for v := rel.TupleID(0); v < 8; v++ {
			got, gotOK := MinContingency(d, v)
			want, wantOK := BruteForceMinContingency(d, v)
			if gotOK != wantOK || (gotOK && got != want) {
				t.Fatalf("trial %d, var %d, DNF %v: bb=(%d,%v) brute=(%d,%v)",
					trial, v, d, got, gotOK, want, wantOK)
			}
		}
	}
}

// TestAblationsAgainstBruteForce re-runs the randomized oracle
// comparison with every optimization toggled off, individually and
// all together: no Options configuration may change an answer.
func TestAblationsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		d := randomMinimalDNF(rng, 9, 7, 3)
		for v := rel.TupleID(0); v < 9; v++ {
			want, wantOK := BruteForceMinContingency(d, v)
			for _, opts := range fuzzVariants {
				got, gotOK := MinContingencyOpts(d, v, opts)
				if gotOK != wantOK || (gotOK && got != want) {
					t.Fatalf("trial %d, var %d, opts %+v, DNF %v: bb=(%d,%v) brute=(%d,%v)",
						trial, v, opts, d, got, gotOK, want, wantOK)
				}
			}
		}
	}
}

// TestIndexReuse checks that one shared Index answers identically to
// the per-call DNF entry points across all solvers — the sharing the
// engine and the difftest oracles rely on.
func TestIndexReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		d := randomMinimalDNF(rng, 8, 6, 3)
		ix := lineage.NewIndex(d)
		for v := rel.TupleID(0); v < 8; v++ {
			wantSet, wantOK := MinContingencySet(d, v)
			gotSet, gotOK := MinContingencySetIndex(ix, v, Options{})
			if gotOK != wantOK || len(gotSet) != len(wantSet) {
				t.Fatalf("trial %d var %d: indexed=(%v,%v) direct=(%v,%v)", trial, v, gotSet, gotOK, wantSet, wantOK)
			}
			gb, gbOK := GreedyMinContingencyIndex(ix, v)
			wb, wbOK := GreedyMinContingency(d, v)
			if gb != wb || gbOK != wbOK {
				t.Fatalf("trial %d var %d: greedy indexed=(%d,%v) direct=(%d,%v)", trial, v, gb, gbOK, wb, wbOK)
			}
			bb, bbOK := BruteForceMinContingencyIndex(ix, v)
			wbb, wbbOK := BruteForceMinContingency(d, v)
			if bb != wbb || bbOK != wbbOK {
				t.Fatalf("trial %d var %d: brute indexed=(%d,%v) direct=(%d,%v)", trial, v, bb, bbOK, wbb, wbbOK)
			}
		}
	}
}

// TestProtectionDedupe pins the self-join satellite: duplicated
// protectable conjuncts collapse to one subproblem, and duplicates
// must not change any answer.
func TestProtectionDedupe(t *testing.T) {
	// d = ta ∨ ta ∨ b ∨ bc: duplicate protection {t,a}.
	d := lineage.DNF{Conjuncts: []lineage.Conjunct{
		lineage.NewConjunct(0, 1),
		lineage.NewConjunct(0, 1),
		lineage.NewConjunct(2),
		lineage.NewConjunct(2, 3),
	}}
	size, ok := MinContingency(d, 0)
	want, wantOK := BruteForceMinContingency(d, 0)
	if ok != wantOK || size != want {
		t.Fatalf("exact=(%d,%v) brute=(%d,%v)", size, ok, want, wantOK)
	}
}

// TestGreedyIsUpperBound checks the greedy baseline never undershoots
// the optimum and agrees on feasibility.
func TestGreedyIsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		d := randomMinimalDNF(rng, 8, 6, 3)
		for v := rel.TupleID(0); v < 8; v++ {
			opt, optOK := MinContingency(d, v)
			g, gOK := GreedyMinContingency(d, v)
			if !optOK {
				if gOK {
					t.Fatalf("greedy found contingency where none exists: DNF %v var %d", d, v)
				}
				continue
			}
			if !gOK {
				// Greedy now tries every protection choice, so it must
				// agree with the exact solver on causehood.
				t.Fatalf("greedy misreported cause as non-cause: DNF %v var %d (optimum %d)", d, v, opt)
			}
			if g < opt {
				t.Fatalf("greedy %d < optimum %d for DNF %v var %d", g, opt, d, v)
			}
		}
	}
}

// Regression (surfaced by the differential harness's DNF fuzzing, see
// internal/difftest): on a non-minimal DNF the old greedy protected
// only the smallest conjunct containing t. With d = ta ∨ a ∨ tcd and
// t=0, the smallest protection {t,a} forbids a, making the target {a}
// unhittable, and greedy misreported the actual cause t as a
// non-cause. Minimizing first (which drops ta, dominated by a) and
// trying every protection choice fixes it: min|Γ| = 1 via Γ = {a},
// protecting tcd.
func TestGreedyNonMinimalRegression(t *testing.T) {
	const tp, a, c, d = rel.TupleID(0), rel.TupleID(1), rel.TupleID(2), rel.TupleID(3)
	dnf := lineage.DNF{Conjuncts: []lineage.Conjunct{
		lineage.NewConjunct(tp, a),
		lineage.NewConjunct(a),
		lineage.NewConjunct(tp, c, d),
	}}
	wantSize, wantOK := BruteForceMinContingency(dnf, tp)
	if !wantOK || wantSize != 1 {
		t.Fatalf("oracle: got (%d,%v), want (1,true)", wantSize, wantOK)
	}
	g, gOK := GreedyMinContingency(dnf, tp)
	if !gOK {
		t.Fatalf("greedy misreported cause as non-cause on non-minimal DNF %v", dnf)
	}
	if g < wantSize {
		t.Fatalf("greedy %d under-reports minimum %d", g, wantSize)
	}
}

func TestMinContingencyDB(t *testing.T) {
	db := rel.NewDatabase()
	r1 := db.MustAdd("R", true, "a")
	db.MustAdd("R", true, "b")
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x")))
	size, ok, err := MinContingencyDB(db, q, r1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || size != 1 {
		t.Fatalf("size=%d ok=%v, want 1,true (remove R(b))", size, ok)
	}
}
