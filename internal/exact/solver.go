// The indexed branch-and-bound core: minimum hitting set with
// forbidden elements over a lineage.Index, one subproblem per
// protected conjunct, with the upper bound shared across subproblems.
// All hot-path state lives in preallocated slices and bitset words —
// the search itself allocates only memo keys.

package exact

import (
	"math"
	"math/bits"
	"sort"

	"github.com/querycause/querycause/internal/lineage"
)

// memoCap bounds the per-subproblem memo table so adversarial inputs
// cannot exhaust memory; entries beyond the cap are searched without
// memoization (still sound, just slower).
const memoCap = 1 << 21

// searcher holds one MinContingencySetIndex call's state: the shared
// upper bound (best/bestSet, in slots) and the per-subproblem scratch.
type searcher struct {
	ix    *lineage.Index
	tslot uint32
	opts  Options

	best    int      // global best |Γ|; -1 = none found yet
	bestSet []uint32 // slots witnessing best
}

// protections returns the deduplicated conjunct indexes containing
// tslot: identical protectable conjuncts (self-join lineages repeat
// them) would search the identical subproblem, so only the first of
// each distinct slot set is kept.
func protections(ix *lineage.Index, tslot uint32) []int {
	occ := ix.Occurrences(tslot)
	out := make([]int, 0, len(occ))
	for _, ci := range occ {
		dup := false
		for _, kept := range out {
			if ix.ConjunctBits(kept).Equal(ix.ConjunctBits(int(ci))) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, int(ci))
		}
	}
	return out
}

// run searches every protected-conjunct subproblem, sharing the best
// bound. With the greedy seed enabled, the greedy solution primes
// best/bestSet and subproblems run best-first by greedy estimate;
// protections greedy proves infeasible are skipped (greedy and exact
// agree exactly on per-protection feasibility: both fail iff some
// target reduces to forbidden elements only).
func (s *searcher) run() {
	prots := protections(s.ix, s.tslot)
	if s.opts.DisableGreedySeed {
		for _, p := range prots {
			s.searchProtection(p)
			if s.best == 0 {
				return
			}
		}
		return
	}
	type est struct{ p, size int }
	ests := make([]est, 0, len(prots))
	for _, p := range prots {
		set, feasible := greedyProtection(s.ix, s.tslot, p)
		if !feasible {
			continue
		}
		ests = append(ests, est{p, len(set)})
		if s.best < 0 || len(set) < s.best {
			s.best = len(set)
			s.bestSet = set
		}
	}
	if s.best <= 0 {
		// Infeasible everywhere (not a cause), or greedy already found a
		// counterfactual-sized solution no search can beat.
		return
	}
	sort.Slice(ests, func(i, j int) bool {
		if ests[i].size != ests[j].size {
			return ests[i].size < ests[j].size
		}
		return ests[i].p < ests[j].p
	})
	for _, e := range ests {
		s.searchProtection(e.p)
		if s.best == 0 {
			return
		}
	}
}

// searchProtection runs the branch and bound for one protected
// conjunct p: every conjunct not containing t must be hit by slots
// outside p ∪ {t}.
func (s *searcher) searchProtection(p int) {
	ix := s.ix
	nv := ix.NumVars()
	forbidden := ix.NewSlotBits()
	for _, e := range ix.ConjunctSlots(p) {
		forbidden.Set(e)
	}
	forbidden.Set(s.tslot)

	// Reduce targets to allowed slots. An empty reduction means this
	// protection is infeasible.
	targets := make([]lineage.Bits, 0, ix.NumConjuncts())
	for ci := 0; ci < ix.NumConjuncts(); ci++ {
		cb := ix.ConjunctBits(ci)
		if cb.Has(s.tslot) {
			continue
		}
		reduced := ix.NewSlotBits()
		reduced.Copy(cb)
		reduced.AndNot(forbidden)
		if reduced.Count() == 0 {
			return
		}
		targets = append(targets, reduced)
	}

	var forced []uint32
	if !s.opts.DisablePreprocess {
		targets, forced = preprocess(targets, nv)
	}
	base := len(forced)
	if s.best >= 0 && base >= s.best {
		return
	}
	if len(targets) == 0 {
		s.record(forced, nil)
		return
	}

	// Local occurrence index and static branch orders.
	m := len(targets)
	tlist := make([][]uint32, m)
	occCount := make([]int32, nv)
	for i, tb := range targets {
		tlist[i] = slotsOf(tb, nil)
		for _, e := range tlist[i] {
			occCount[e]++
		}
	}
	localOcc := make([][]int32, nv)
	for i := range tlist {
		for _, e := range tlist[i] {
			localOcc[e] = append(localOcc[e], int32(i))
		}
	}
	// Branch on frequent elements first: they cover more targets, so
	// good solutions (and tight bounds) surface early. Ties by slot
	// keep the search deterministic.
	for i := range tlist {
		l := tlist[i]
		sort.Slice(l, func(a, b int) bool {
			if occCount[l[a]] != occCount[l[b]] {
				return occCount[l[a]] > occCount[l[b]]
			}
			return l[a] < l[b]
		})
	}

	covered := lineage.NewBits(m)
	hits := make([]int32, m)
	packUsed := ix.NewSlotBits()
	chosen := make([]uint32, 0, 16)
	uncov := m
	var memo map[string]int
	if !s.opts.DisableMemo {
		memo = make(map[string]int)
	}
	var keyBuf []byte

	var rec func(depth int)
	rec = func(depth int) {
		if s.best >= 0 && base+depth >= s.best {
			return
		}
		if uncov == 0 {
			s.record(forced, chosen)
			return
		}
		if memo != nil {
			keyBuf = covered.AppendKey(keyBuf[:0])
			if prev, seen := memo[string(keyBuf)]; seen && prev <= depth {
				return
			}
			if len(memo) < memoCap {
				memo[string(keyBuf)] = depth
			}
		}
		// One pass over the targets: pick the uncovered target with the
		// fewest alternatives for branching and greedily pack
		// pairwise-disjoint uncovered targets for a lower bound.
		pick := -1
		lb := 1
		if !s.opts.DisablePackingBound {
			lb = 0
			packUsed.Zero()
		}
		for i := 0; i < m; i++ {
			if covered.Has(uint32(i)) {
				continue
			}
			if pick < 0 || len(tlist[i]) < len(tlist[pick]) {
				pick = i
			}
			if !s.opts.DisablePackingBound && !packUsed.Intersects(targets[i]) {
				lb++
				packUsed.Or(targets[i])
			}
		}
		if s.best >= 0 && base+depth+lb >= s.best {
			return
		}
		for _, e := range tlist[pick] {
			for _, ti := range localOcc[e] {
				hits[ti]++
				if hits[ti] == 1 {
					covered.Set(uint32(ti))
					uncov--
				}
			}
			chosen = append(chosen, e)
			rec(depth + 1)
			chosen = chosen[:len(chosen)-1]
			for _, ti := range localOcc[e] {
				hits[ti]--
				if hits[ti] == 0 {
					covered.Clear(uint32(ti))
					uncov++
				}
			}
		}
	}
	rec(0)
}

// record installs forced ∪ chosen as the new incumbent. Callers
// guarantee it is strictly smaller than the current best.
func (s *searcher) record(forced, chosen []uint32) {
	set := make([]uint32, 0, len(forced)+len(chosen))
	set = append(set, forced...)
	set = append(set, chosen...)
	s.best = len(set)
	s.bestSet = set
}

// preprocess simplifies one subproblem's targets to fixpoint:
//
//   - unit propagation: a singleton target forces its slot into the
//     solution; every target containing a forced slot is dropped;
//   - duplicate/superset elimination: a target that contains another
//     target is redundant (hitting the subset hits it);
//   - element dominance: if every remaining target containing slot a
//     also contains slot b, any solution using a can use b instead,
//     so a is removed from all targets (ties keep the smaller slot).
//
// Dropped targets are always hit by what remains (a forced slot or a
// surviving subset), and dominance never empties a target, so the
// reduced problem has the same optimal size and any solution of it —
// plus the forced slots — hits every original target.
func preprocess(targets []lineage.Bits, nv int) ([]lineage.Bits, []uint32) {
	var forced []uint32
	scratch := make([]uint32, 0, nv)
	for {
		changed := false
		// Unit propagation.
		for i := range targets {
			if targets[i] == nil || targets[i].Count() != 1 {
				continue
			}
			e := slotsOf(targets[i], scratch[:0])[0]
			forced = append(forced, e)
			for j := range targets {
				if targets[j] != nil && targets[j].Has(e) {
					targets[j] = nil
				}
			}
			changed = true
		}
		alive := aliveTargets(targets)
		// Duplicate/superset elimination: smaller targets first, so the
		// kept representative of a duplicate group is the earliest.
		sort.Slice(alive, func(a, b int) bool {
			ca, cb := targets[alive[a]].Count(), targets[alive[b]].Count()
			if ca != cb {
				return ca < cb
			}
			return alive[a] < alive[b]
		})
		for ai, i := range alive {
			if targets[i] == nil {
				continue
			}
			for _, j := range alive[ai+1:] {
				if targets[j] != nil && targets[i].SubsetOf(targets[j]) {
					targets[j] = nil
					changed = true
				}
			}
		}
		alive = alive[:0]
		for i := range targets {
			if targets[i] != nil {
				alive = append(alive, i)
			}
		}
		// Element dominance over the surviving targets.
		if len(alive) > 0 {
			present := ix32Union(targets, alive, scratch[:0])
			occ := make(map[uint32]lineage.Bits, len(present))
			for _, e := range present {
				b := lineage.NewBits(len(alive))
				for li, i := range alive {
					if targets[i].Has(e) {
						b.Set(uint32(li))
					}
				}
				occ[e] = b
			}
			for _, a := range present {
				oa := occ[a]
				if oa.Count() == 0 {
					continue // already removed this round
				}
				for _, b := range present {
					if a == b {
						continue
					}
					ob := occ[b]
					if ob.Count() == 0 || !oa.SubsetOf(ob) {
						continue
					}
					if oa.Equal(ob) && a < b {
						continue // tie: keep the smaller slot
					}
					for _, i := range alive {
						targets[i].Clear(a)
					}
					oa.Zero()
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	out := targets[:0]
	for _, tb := range targets {
		if tb != nil {
			out = append(out, tb)
		}
	}
	return out, forced
}

// aliveTargets returns the indexes of non-dropped targets.
func aliveTargets(targets []lineage.Bits) []int {
	out := make([]int, 0, len(targets))
	for i := range targets {
		if targets[i] != nil {
			out = append(out, i)
		}
	}
	return out
}

// ix32Union collects the sorted slots occurring in the alive targets.
func ix32Union(targets []lineage.Bits, alive []int, buf []uint32) []uint32 {
	if len(alive) == 0 {
		return buf
	}
	u := lineage.NewBits(64 * len(targets[alive[0]]))
	for _, i := range alive {
		u.Or(targets[i])
	}
	return slotsOf(u, buf)
}

// slotsOf appends the set bits of b to buf in ascending order.
func slotsOf(b lineage.Bits, buf []uint32) []uint32 {
	for w, word := range b {
		for word != 0 {
			buf = append(buf, uint32(w*64+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return buf
}

// greedyProtection runs one greedy hitting pass with conjunct p
// protected: every conjunct not containing t must be hit by slots
// outside p ∪ {t}; the slot covering the most uncovered targets is
// chosen each round, ties broken by the smaller slot (= smaller tuple
// ID). feasible=false when some target consists solely of forbidden
// slots — exactly the condition under which the exact search is
// infeasible for p too (impossible on minimal DNFs, where no target
// is a subset of a protected conjunct).
func greedyProtection(ix *lineage.Index, tslot uint32, p int) (set []uint32, feasible bool) {
	forbidden := ix.NewSlotBits()
	for _, e := range ix.ConjunctSlots(p) {
		forbidden.Set(e)
	}
	forbidden.Set(tslot)

	var targets [][]uint32
	for ci := 0; ci < ix.NumConjuncts(); ci++ {
		if ix.ConjunctBits(ci).Has(tslot) {
			continue
		}
		var allowed []uint32
		for _, e := range ix.ConjunctSlots(ci) {
			if !forbidden.Has(e) {
				allowed = append(allowed, e)
			}
		}
		if len(allowed) == 0 {
			return nil, false
		}
		targets = append(targets, allowed)
	}
	covered := make([]bool, len(targets))
	counts := make([]int32, ix.NumVars())
	uncov := len(targets)
	for uncov > 0 {
		for i := range counts {
			counts[i] = 0
		}
		for i, tg := range targets {
			if covered[i] {
				continue
			}
			for _, e := range tg {
				counts[e]++
			}
		}
		bestE, bestC := uint32(0), int32(math.MinInt32)
		for e := range counts {
			if counts[e] > bestC {
				bestE, bestC = uint32(e), counts[e]
			}
		}
		set = append(set, bestE)
		for i, tg := range targets {
			if covered[i] {
				continue
			}
			for _, e := range tg {
				if e == bestE {
					covered[i] = true
					uncov--
					break
				}
			}
		}
	}
	return set, true
}
