package faultinject

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, hc *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return hc.Do(req)
}

// TestTransportInjects503Bursts: with Err=1 every retry-safe request
// is answered by a synthesized 503 and the counter advances; disarming
// restores clean passthrough.
func TestTransportInjects503Bursts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer ts.Close()
	in := New(Config{Seed: 1, Err: 1})
	hc := &http.Client{Transport: in.Transport(nil)}

	resp, err := get(t, hc, ts.URL)
	if err != nil {
		t.Fatalf("injected 503 came back as transport error: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "faultinject") {
		t.Fatalf("body = %q, want injected error payload", body)
	}
	if c := in.Counters(); c.Errors == 0 {
		t.Fatalf("counters = %+v, want Errors > 0", c)
	}

	in.Arm(false)
	resp, err = get(t, hc, ts.URL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("disarmed request: resp=%v err=%v, want clean 200", resp, err)
	}
	resp.Body.Close()
}

// TestTransportDropsConnections: with Drop=1 every retry-safe request
// fails with a transport error before reaching the server.
func TestTransportDropsConnections(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { hits++ }))
	defer ts.Close()
	in := New(Config{Seed: 2, Drop: 1})
	hc := &http.Client{Transport: in.Transport(nil)}
	if _, err := get(t, hc, ts.URL); err == nil {
		t.Fatal("dropped request succeeded")
	}
	if hits != 0 {
		t.Fatalf("server saw %d requests through a Drop=1 transport", hits)
	}
	if c := in.Counters(); c.Drops == 0 {
		t.Fatalf("counters = %+v, want Drops > 0", c)
	}
}

// TestTransportSparesUnsafeRequests: unkeyed POSTs pass through every
// fault class untouched — faults are only injected where the client
// contractually recovers.
func TestTransportSparesUnsafeRequests(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer ts.Close()
	in := New(Config{Seed: 3, Drop: 1, Err: 1, Delay: 1, Truncate: 1})
	hc := &http.Client{Transport: in.Transport(nil)}
	resp, err := hc.Post(ts.URL+"/v1/databases", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("unkeyed POST faulted: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unkeyed POST got %d, want clean 200", resp.StatusCode)
	}
	if c := in.Counters(); c.Total() != 0 {
		t.Fatalf("counters = %+v, want no injection on unsafe requests", c)
	}

	// A keyed POST is fair game.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/databases/d1/tuples", strings.NewReader("{}"))
	req.Header.Set("Idempotency-Key", "k1")
	resp2, err := hc.Do(req)
	if err == nil {
		resp2.Body.Close()
	}
	if c := in.Counters(); c.Total() == 0 {
		t.Fatal("keyed POST was not considered for injection")
	}
}

// TestTransportTruncatesWatchStreams: a 2xx watch response body is cut
// after a byte budget, surfacing as an unexpected EOF mid-stream.
func TestTransportTruncatesWatchStreams(t *testing.T) {
	big := strings.Repeat(`{"type":"diff","version":1}`+"\n", 1024)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(big))
	}))
	defer ts.Close()
	in := New(Config{Seed: 4, Truncate: 1})
	hc := &http.Client{Transport: in.Transport(nil)}
	resp, err := get(t, hc, ts.URL+"/v1/databases/d1/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read err = %v (got %d bytes), want io.ErrUnexpectedEOF", err, len(body))
	}
	if len(body) >= len(big) {
		t.Fatalf("body not truncated: %d bytes of %d", len(body), len(big))
	}
	if c := in.Counters(); c.Truncations == 0 {
		t.Fatalf("counters = %+v, want Truncations > 0", c)
	}
}

// TestTransportDelay: Delay=1 injects bounded latency but the request
// still succeeds.
func TestTransportDelay(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer ts.Close()
	in := New(Config{Seed: 5, Delay: 1, MaxDelay: 5 * time.Millisecond})
	hc := &http.Client{Transport: in.Transport(nil)}
	resp, err := get(t, hc, ts.URL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delayed request: resp=%v err=%v", resp, err)
	}
	resp.Body.Close()
	if c := in.Counters(); c.Delays == 0 {
		t.Fatalf("counters = %+v, want Delays > 0", c)
	}
}

// TestListenerCutsConnections: a Cut=1 listener's connections die
// after their byte budget, so a large response arrives truncated.
func TestListenerCutsConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := New(Config{Seed: 6, Cut: 1})
	big := strings.Repeat("x", 64<<10)
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "65536")
		_, _ = w.Write([]byte(big))
	})}
	go hs.Serve(in.Listener(ln))
	defer hs.Close()

	resp, err := http.Get("http://" + ln.Addr().String())
	if err == nil {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(body) == len(big) {
			t.Fatal("response arrived intact through a Cut=1 listener")
		}
	}
	if c := in.Counters(); c.Cuts == 0 {
		t.Fatalf("counters = %+v, want Cuts > 0", c)
	}
}

// TestDeterministicSequence: two injectors with the same seed draw the
// same fault decisions for the same request sequence.
func TestDeterministicSequence(t *testing.T) {
	draw := func(seed int64) []bool {
		in := New(Config{Seed: seed, Drop: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.chance(in.cfg.Drop)
		}
		return out
	}
	a, b, c := draw(42), draw(42), draw(43)
	same := true
	for i := range a {
		same = same && a[i] == b[i]
	}
	if !same {
		t.Fatal("same seed drew different fault sequences")
	}
	diff := false
	for i := range a {
		diff = diff || a[i] != c[i]
	}
	if !diff {
		t.Fatal("different seeds drew identical 64-draw sequences (suspicious)")
	}
}
