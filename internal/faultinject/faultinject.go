// Package faultinject is the repository's chaos toolkit: a seeded,
// deterministic-by-construction fault injector that sits on either
// side of the querycaused wire. On the client side an injectable
// http.RoundTripper drops connections, delays requests, and
// synthesizes 503 bursts; on the server side a net.Listener wrapper
// hands out connections that die mid-write, truncating NDJSON frames
// in the middle of a line. The difftest sweep and the chaoscurve soak
// run with an Injector armed and still demand byte-identical results —
// the resilience machinery (client retries with jittered backoff,
// Idempotency-Key dedup, resumable watches) has to absorb every
// injected fault without changing a single answer.
//
// Faults are only injected on requests the client contractually
// retries — GETs, DELETEs, keyed mutation POSTs, and watch
// subscriptions (which reconnect and resume). Unkeyed POSTs (uploads,
// explain calls) pass through untouched: faulting a request nobody
// retries tests nothing but the fault injector.
package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the fault probabilities (all in [0, 1]; zero disables
// that fault class).
type Config struct {
	// Seed seeds the injector's RNG. Two injectors with the same seed
	// draw the same fault sequence (scheduling still interleaves
	// concurrent requests differently).
	Seed int64
	// Drop is the probability a retry-safe request is dropped with a
	// transport error before reaching the server — a died node, from
	// the client's point of view.
	Drop float64
	// Delay is the probability a retry-safe request is held for a
	// random latency up to MaxDelay before proceeding.
	Delay float64
	// MaxDelay caps injected latency (default 25ms).
	MaxDelay time.Duration
	// Err is the probability a retry-safe request starts a burst of
	// synthesized 503 responses (the burst length is drawn uniformly
	// from [1, BurstMax]; subsequent retry-safe requests consume it).
	Err float64
	// BurstMax bounds a 503 burst's length (default 3).
	BurstMax int
	// Truncate is the probability a watch stream's response body is cut
	// after a random byte budget — mid-NDJSON-frame more often than
	// not — forcing the client's resume path.
	Truncate float64
	// Cut is the probability a listener-side connection gets a random
	// byte budget and dies mid-write once it is spent.
	Cut float64
}

func (c Config) withDefaults() Config {
	if c.MaxDelay <= 0 {
		c.MaxDelay = 25 * time.Millisecond
	}
	if c.BurstMax <= 0 {
		c.BurstMax = 3
	}
	return c
}

// Counters reports how many faults of each class were injected.
type Counters struct {
	Drops       uint64 `json:"drops"`
	Delays      uint64 `json:"delays"`
	Errors      uint64 `json:"errors_503"`
	Truncations uint64 `json:"truncations"`
	Cuts        uint64 `json:"conn_cuts"`
}

// Total is the number of injected faults across all classes.
func (c Counters) Total() uint64 {
	return c.Drops + c.Delays + c.Errors + c.Truncations + c.Cuts
}

// Injector draws faults from a seeded RNG and hands out transports
// and listeners that apply them. Safe for concurrent use; Arm(false)
// quiesces injection (e.g. for a soak's final assertions) without
// tearing the wrapped plumbing down.
type Injector struct {
	cfg   Config
	armed atomic.Bool

	mu    sync.Mutex
	rng   *rand.Rand
	burst int // remaining synthesized 503s in the current burst

	drops  atomic.Uint64
	delays atomic.Uint64
	errs   atomic.Uint64
	truncs atomic.Uint64
	cuts   atomic.Uint64
}

// New returns an armed Injector drawing from cfg.Seed.
func New(cfg Config) *Injector {
	in := &Injector{cfg: cfg.withDefaults(), rng: rand.New(rand.NewSource(cfg.Seed))}
	in.armed.Store(true)
	return in
}

// Arm enables or disables fault injection; wrapped transports and
// listeners pass everything through untouched while disarmed.
func (in *Injector) Arm(on bool) { in.armed.Store(on) }

// Counters snapshots the per-class injection counts.
func (in *Injector) Counters() Counters {
	return Counters{
		Drops:       in.drops.Load(),
		Delays:      in.delays.Load(),
		Errors:      in.errs.Load(),
		Truncations: in.truncs.Load(),
		Cuts:        in.cuts.Load(),
	}
}

// chance draws one biased coin under the injector's lock.
func (in *Injector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < p
}

// intn draws one bounded int under the injector's lock.
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

// retrySafe reports whether the client contractually recovers from a
// faulted exchange of this request: idempotent methods, keyed
// mutations (the server's dedup makes a re-send safe), and watch
// subscriptions (resumable by protocol).
func retrySafe(req *http.Request) bool {
	switch req.Method {
	case http.MethodGet, http.MethodDelete:
		return true
	case http.MethodPost:
		return req.Header.Get("Idempotency-Key") != "" || strings.HasSuffix(req.URL.Path, "/watch")
	}
	return false
}

// Transport wraps inner (nil for http.DefaultTransport) with fault
// injection. Use it as an http.Client's Transport.
func (in *Injector) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &transport{in: in, inner: inner}
}

type transport struct {
	in    *Injector
	inner http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.in
	if !in.armed.Load() || !retrySafe(req) {
		return t.inner.RoundTrip(req)
	}
	if in.chance(in.cfg.Delay) {
		in.delays.Add(1)
		d := time.Duration(in.intn(int(in.cfg.MaxDelay)) + 1)
		select {
		case <-req.Context().Done():
			closeBody(req)
			return nil, req.Context().Err()
		case <-time.After(d):
		}
	}
	if in.takeErr() {
		in.errs.Add(1)
		closeBody(req)
		return synth503(req), nil
	}
	if in.chance(in.cfg.Drop) {
		in.drops.Add(1)
		closeBody(req)
		return nil, fmt.Errorf("faultinject: connection dropped before %s %s", req.Method, req.URL.Path)
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	// Truncation applies to watch streams only: a cut GET body would
	// surface as a JSON decode error nobody retries, while a cut watch
	// stream exercises exactly the resume path under test.
	if strings.HasSuffix(req.URL.Path, "/watch") && resp.StatusCode/100 == 2 && in.chance(in.cfg.Truncate) {
		in.truncs.Add(1)
		budget := int64(in.intn(4096) + 64)
		resp.Body = &truncatedBody{rc: resp.Body, remaining: budget}
	}
	return resp, nil
}

// takeErr decides whether this request is answered by a synthesized
// 503: it either continues the current burst or (with probability
// cfg.Err) starts a new one.
func (in *Injector) takeErr() bool {
	if in.cfg.Err <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.burst > 0 {
		in.burst--
		return true
	}
	if in.rng.Float64() < in.cfg.Err {
		in.burst = in.rng.Intn(in.cfg.BurstMax) // this response + burst more
		return true
	}
	return false
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		_ = req.Body.Close()
	}
}

func synth503(req *http.Request) *http.Response {
	const body = `{"error":"faultinject: injected service unavailability"}`
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatedBody cuts a response body after a byte budget, simulating
// a connection dying mid-NDJSON-frame. The cut surfaces as an
// unexpected EOF to the reader.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.rc.Read(p)
	t.remaining -= int64(n)
	if err == nil && t.remaining <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *truncatedBody) Close() error { return t.rc.Close() }

// Listener wraps ln with connection-level faults: each accepted
// connection may (with probability cfg.Cut) receive a random byte
// budget and die mid-write once it is spent — from a client's point
// of view, a stream that stops mid-frame.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	in := l.in
	if !in.armed.Load() || !in.chance(in.cfg.Cut) {
		return conn, nil
	}
	in.cuts.Add(1)
	return &cutConn{Conn: conn, budget: int64(in.intn(16<<10) + 512)}, nil
}

// cutConn forwards writes until its byte budget is spent, then closes
// the underlying connection — a partial final write included, so the
// peer sees a truncated stream rather than a clean shutdown.
type cutConn struct {
	net.Conn
	mu     sync.Mutex
	budget int64
	dead   bool
}

func (c *cutConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return 0, fmt.Errorf("faultinject: connection cut")
	}
	if int64(len(p)) <= c.budget {
		n, err := c.Conn.Write(p)
		c.budget -= int64(n)
		return n, err
	}
	n, _ := c.Conn.Write(p[:c.budget])
	c.dead = true
	_ = c.Conn.Close()
	return n, fmt.Errorf("faultinject: connection cut after byte budget")
}
