// Package hypergraph implements the dual query hypergraph of
// Definition 4.3 of Meliou et al. (VLDB 2010) and the linearity test of
// Definition 4.4: a hypergraph is linear if its vertices admit a total
// order in which every hyperedge is a consecutive subsequence (the
// consecutive-ones property of the vertex/edge incidence matrix).
//
// Vertices are atoms of a conjunctive query; hyperedges are variables
// (each variable's set of atoms). Queries have few atoms, so the
// linearity test is a pruned backtracking search over vertex orders.
package hypergraph

import (
	"fmt"
	"sort"
)

// Hypergraph has vertices 0..N-1 and named hyperedges over them.
type Hypergraph struct {
	N     int
	names []string
	edges map[string][]int // sorted vertex lists
}

// New returns an empty hypergraph on n vertices.
func New(n int) *Hypergraph {
	return &Hypergraph{N: n, edges: make(map[string][]int)}
}

// AddEdge adds (or replaces) the named hyperedge. Vertex lists are
// deduplicated and sorted. Out-of-range vertices are an error.
func (h *Hypergraph) AddEdge(name string, vertices []int) error {
	seen := make(map[int]bool)
	var vs []int
	for _, v := range vertices {
		if v < 0 || v >= h.N {
			return fmt.Errorf("hypergraph: vertex %d out of range [0,%d)", v, h.N)
		}
		if !seen[v] {
			seen[v] = true
			vs = append(vs, v)
		}
	}
	sort.Ints(vs)
	if _, ok := h.edges[name]; !ok {
		h.names = append(h.names, name)
	}
	h.edges[name] = vs
	return nil
}

// Edge returns the vertex list of the named edge (nil if absent).
func (h *Hypergraph) Edge(name string) []int { return h.edges[name] }

// EdgeNames returns edge names in insertion order.
func (h *Hypergraph) EdgeNames() []string { return h.names }

// LinearOrder searches for a vertex order in which every hyperedge is
// consecutive. It returns the order and true, or nil and false if the
// hypergraph is not linear.
//
// The search places one vertex at a time. Per edge it tracks whether the
// edge has started (some member placed) and whether it has been closed
// (a non-member placed after a member); placing a member of a closed
// edge is pruned. Singleton and empty edges are trivially consecutive
// and skipped.
func (h *Hypergraph) LinearOrder() ([]int, bool) {
	type edgeState struct {
		members []int
		placed  int
		closed  bool
	}
	var states []*edgeState
	memberOf := make([][]int, h.N) // vertex -> indexes into states
	for _, name := range h.names {
		vs := h.edges[name]
		if len(vs) < 2 {
			continue
		}
		idx := len(states)
		states = append(states, &edgeState{members: vs})
		for _, v := range vs {
			memberOf[v] = append(memberOf[v], idx)
		}
	}

	order := make([]int, 0, h.N)
	used := make([]bool, h.N)
	isMember := func(st *edgeState, v int) bool {
		i := sort.SearchInts(st.members, v)
		return i < len(st.members) && st.members[i] == v
	}

	var rec func() bool
	rec = func() bool {
		if len(order) == h.N {
			return true
		}
		for v := 0; v < h.N; v++ {
			if used[v] {
				continue
			}
			ok := true
			for _, ei := range memberOf[v] {
				if states[ei].closed {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Apply: v starts/continues its edges; every other open edge
			// closes.
			var closedNow []int
			for ei, st := range states {
				if st.placed > 0 && st.placed < len(st.members) && !st.closed && !isMember(st, v) {
					st.closed = true
					closedNow = append(closedNow, ei)
				}
			}
			for _, ei := range memberOf[v] {
				states[ei].placed++
			}
			used[v] = true
			order = append(order, v)

			if rec() {
				return true
			}

			order = order[:len(order)-1]
			used[v] = false
			for _, ei := range memberOf[v] {
				states[ei].placed--
			}
			for _, ei := range closedNow {
				states[ei].closed = false
			}
		}
		return false
	}
	if rec() {
		return order, true
	}
	return nil, false
}

// IsLinear reports whether the hypergraph admits a linear order.
func (h *Hypergraph) IsLinear() bool {
	_, ok := h.LinearOrder()
	return ok
}

// Components returns the connected components (vertices linked by shared
// hyperedges), each sorted, in order of smallest member.
func (h *Hypergraph) Components() [][]int {
	parent := make([]int, h.N)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, vs := range h.edges {
		for i := 1; i < len(vs); i++ {
			union(vs[0], vs[i])
		}
	}
	groups := make(map[int][]int)
	for v := 0; v < h.N; v++ {
		r := find(v)
		groups[r] = append(groups[r], v)
	}
	var roots []int
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return groups[roots[i]][0] < groups[roots[j]][0] })
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		sort.Ints(groups[r])
		out = append(out, groups[r])
	}
	return out
}
