package hypergraph

import "testing"

func edgeOK(order []int, edge []int) bool {
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	if len(edge) == 0 {
		return true
	}
	lo, hi := len(order), -1
	for _, v := range edge {
		p := pos[v]
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	return hi-lo+1 == len(edge)
}

// TestFig5aLinear reproduces Fig. 5a: the query
// A(x),S1(x,v),S2(v,y),R(y,u),S3(y,z),T(z,w),B(z) is linear with order
// A,S1,S2,R,S3,T,B. Atoms indexed 0..6 in that order.
func TestFig5aLinear(t *testing.T) {
	h := New(7)
	// Variables: x∈{A,S1}, v∈{S1,S2}, y∈{S2,R,S3}, u∈{R}, z∈{S3,T,B}, w∈{T}.
	check := func(name string, vs []int) {
		if err := h.AddEdge(name, vs); err != nil {
			t.Fatal(err)
		}
	}
	check("x", []int{0, 1})
	check("v", []int{1, 2})
	check("y", []int{2, 3, 4})
	check("u", []int{3})
	check("z", []int{4, 5, 6})
	check("w", []int{5})
	order, ok := h.LinearOrder()
	if !ok {
		t.Fatal("Fig. 5a query should be linear")
	}
	for _, name := range h.EdgeNames() {
		if !edgeOK(order, h.Edge(name)) {
			t.Errorf("edge %s not consecutive in %v", name, order)
		}
	}
}

// TestFig5bNotLinear reproduces Fig. 5b: h1* = A(x),B(y),C(z),W(x,y,z)
// is not linear (atoms A,B,C,W = 0,1,2,3).
func TestFig5bNotLinear(t *testing.T) {
	h := New(4)
	h.AddEdge("x", []int{0, 3})
	h.AddEdge("y", []int{1, 3})
	h.AddEdge("z", []int{2, 3})
	if h.IsLinear() {
		t.Fatal("h1* must not be linear")
	}
}

// TestH2NotLinear: h2* = R(x,y),S(y,z),T(z,x) (a triangle) is not linear.
func TestH2NotLinear(t *testing.T) {
	h := New(3)
	h.AddEdge("x", []int{0, 2})
	h.AddEdge("y", []int{0, 1})
	h.AddEdge("z", []int{1, 2})
	if h.IsLinear() {
		t.Fatal("triangle must not be linear")
	}
}

func TestChainLinear(t *testing.T) {
	// R(x,y),S(y,z),T(z,w): linear.
	h := New(3)
	h.AddEdge("x", []int{0})
	h.AddEdge("y", []int{0, 1})
	h.AddEdge("z", []int{1, 2})
	h.AddEdge("w", []int{2})
	order, ok := h.LinearOrder()
	if !ok {
		t.Fatal("chain should be linear")
	}
	for _, name := range h.EdgeNames() {
		if !edgeOK(order, h.Edge(name)) {
			t.Errorf("edge %s not consecutive in %v", name, order)
		}
	}
}

func TestSingleVertexAndEmpty(t *testing.T) {
	h := New(1)
	if _, ok := h.LinearOrder(); !ok {
		t.Error("single vertex is linear")
	}
	h0 := New(0)
	if _, ok := h0.LinearOrder(); !ok {
		t.Error("empty hypergraph is linear")
	}
}

func TestFullEdgeAlwaysLinear(t *testing.T) {
	h := New(4)
	h.AddEdge("x", []int{0, 1, 2, 3})
	if !h.IsLinear() {
		t.Error("one edge covering all vertices is linear in any order")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	h := New(2)
	if err := h.AddEdge("x", []int{0, 5}); err == nil {
		t.Error("expected out-of-range error")
	}
	if err := h.AddEdge("x", []int{0, 0, 1}); err != nil {
		t.Errorf("duplicates should be tolerated: %v", err)
	}
	if got := h.Edge("x"); len(got) != 2 {
		t.Errorf("edge x = %v, want deduped {0,1}", got)
	}
}

func TestComponents(t *testing.T) {
	h := New(5)
	h.AddEdge("a", []int{0, 1})
	h.AddEdge("b", []int{1, 2})
	h.AddEdge("c", []int{3})
	comps := h.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v, want 3 groups", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Errorf("first component = %v, want [0 1 2]", comps[0])
	}
}

// TestOverlappingTriples: edges {0,1,2} and {1,2,3} are linearizable,
// but adding {0,3} (wrapping around) is not.
func TestOverlappingTriples(t *testing.T) {
	h := New(4)
	h.AddEdge("a", []int{0, 1, 2})
	h.AddEdge("b", []int{1, 2, 3})
	if !h.IsLinear() {
		t.Fatal("overlapping triples should be linear")
	}
	h.AddEdge("c", []int{0, 3})
	if h.IsLinear() {
		t.Fatal("cycle closure should break linearity")
	}
}
