package rewrite

import (
	"math/rand"
	"testing"

	"github.com/querycause/querycause/internal/shape"
)

func classifyT(t *testing.T, s *shape.Shape) *Certificate {
	t.Helper()
	c, err := Classify(s)
	if err != nil {
		t.Fatalf("Classify(%v): %v", s, err)
	}
	return c
}

func TestHardQueriesAreNPHard(t *testing.T) {
	for _, h := range []shape.HardQuery{shape.H1, shape.H2, shape.H3} {
		c := classifyT(t, shape.NewHard(h))
		if c.Class != ClassNPHard {
			t.Errorf("%s classified %v, want NP-hard", h, c.Class)
		}
		if c.Hard != h {
			t.Errorf("%s matched %s", h, c.Hard)
		}
		if len(c.Rewrites) != 0 {
			t.Errorf("%s should match without rewrites, got %v", h, c.Rewrites)
		}
	}
}

// TestFinality verifies Theorem 4.13's defining property on the three
// canonical queries: every single rewriting of h₁*, h₂*, h₃* is weakly
// linear.
func TestFinality(t *testing.T) {
	for _, h := range []shape.HardQuery{shape.H1, shape.H2, shape.H3} {
		s := shape.NewHard(h)
		for _, ap := range s.Rewrites() {
			_, _, _, found, err := WeaklyLinear(ap.Result)
			if err != nil {
				t.Fatal(err)
			}
			if !found {
				t.Errorf("%s rewritten by %v is not weakly linear: %v", h, ap.Op, ap.Result)
			}
		}
	}
}

// TestExample4_8 reproduces Example 4.8: the 4-cycle
// R(x,y),S(y,z),T(z,u),K(u,x) (all endogenous) is NP-hard via a rewrite
// chain to h₂*.
func TestExample4_8(t *testing.T) {
	s := shape.New(
		shape.A("R", true, 0, 1),
		shape.A("S", true, 1, 2),
		shape.A("T", true, 2, 3),
		shape.A("K", true, 3, 0),
	)
	s.VarNames = []string{"x", "y", "z", "u"}
	c := classifyT(t, s)
	if c.Class != ClassNPHard {
		t.Fatalf("4-cycle classified %v, want NP-hard", c.Class)
	}
	if c.Hard != shape.H2 {
		t.Errorf("4-cycle reduced to %s, want h2", c.Hard)
	}
	if len(c.Rewrites) == 0 {
		t.Error("expected a non-empty rewrite chain")
	}
}

// TestExample4_12a: Rⁿ(x,y), Sˣ(y,z), Tⁿ(z,x) is PTIME via one
// dissociation (contrast with h₂*, which differs only in S's flag).
func TestExample4_12a(t *testing.T) {
	s := shape.New(
		shape.A("R", true, 0, 1),
		shape.A("S", false, 1, 2),
		shape.A("T", true, 2, 0),
	)
	c := classifyT(t, s)
	if !c.Class.PTime() {
		t.Fatalf("classified %v, want PTIME", c.Class)
	}
	if c.Class != ClassWeaklyLinear {
		t.Errorf("classified %v, want weakly linear (not plain linear)", c.Class)
	}
	// Verify the certificate replays.
	final, order, err := c.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !final.IsLinear() || len(order) != 3 {
		t.Errorf("replayed shape not linear: %v / %v", final, order)
	}
}

// TestExample4_12b: Rⁿ(x,y), Sⁿ(y,z), Tⁿ(z,x), Vⁿ(x) is PTIME via
// domination then dissociation.
func TestExample4_12b(t *testing.T) {
	s := shape.New(
		shape.A("R", true, 0, 1),
		shape.A("S", true, 1, 2),
		shape.A("T", true, 2, 0),
		shape.A("V", true, 0),
	)
	c := classifyT(t, s)
	if !c.Class.PTime() {
		t.Fatalf("classified %v, want PTIME", c.Class)
	}
	hasDomination := false
	for _, op := range c.Weakening {
		if op.Kind == shape.Domination {
			hasDomination = true
		}
	}
	if !hasDomination {
		t.Errorf("expected a domination step, got %v", c.Weakening)
	}
}

// TestTheorem4_13Case2b: Aⁿ(x),Bˣ(y),Cˣ(z),R,S,T,W (R,S,T,W endogenous)
// is weakly linear (A dominates R, T and W).
func TestTheorem4_13Case2b(t *testing.T) {
	s := shape.New(
		shape.A("A", true, 0),
		shape.A("B", false, 1),
		shape.A("C", false, 2),
		shape.A("R", true, 0, 1),
		shape.A("S", true, 1, 2),
		shape.A("T", true, 2, 0),
		shape.A("W", true, 0, 1, 2),
	)
	c := classifyT(t, s)
	if !c.Class.PTime() {
		t.Errorf("classified %v, want PTIME", c.Class)
	}
}

// TestTheorem4_13Case2c: Aⁿ(x),Bⁿ(y),R,S,T (binary atoms endogenous) is
// weakly linear: R,S,T are all dominated.
func TestTheorem4_13Case2c(t *testing.T) {
	s := shape.New(
		shape.A("A", true, 0),
		shape.A("B", true, 1),
		shape.A("R", true, 0, 1),
		shape.A("S", true, 1, 2),
		shape.A("T", true, 2, 0),
	)
	c := classifyT(t, s)
	if !c.Class.PTime() {
		t.Errorf("classified %v, want PTIME", c.Class)
	}
}

func TestLinearChainIsLinearClass(t *testing.T) {
	// Theorem 4.15's query R(x,u1,y),S(y,u2,z),T(z,u3,w): linear.
	s := shape.New(
		shape.A("R", true, 0, 1, 2),
		shape.A("S", true, 2, 3, 4),
		shape.A("T", true, 4, 5, 6),
	)
	c := classifyT(t, s)
	if c.Class != ClassLinear {
		t.Errorf("chain classified %v, want linear", c.Class)
	}
	if len(c.LinearOrder) != 3 {
		t.Errorf("linear order = %v", c.LinearOrder)
	}
}

func TestSelfJoinClasses(t *testing.T) {
	s := shape.New(
		shape.A("R", true, 0),
		shape.A("S", false, 0, 1),
		shape.A("R", true, 1),
	)
	c := classifyT(t, s)
	if c.Class != ClassSelfJoinHard {
		t.Errorf("Prop 4.16 query classified %v", c.Class)
	}
	// Open self-join case: Rⁿ(x,y), Rⁿ(y,z) (left open in the paper).
	s2 := shape.New(shape.A("R", true, 0, 1), shape.A("R", true, 1, 2))
	c2 := classifyT(t, s2)
	if c2.Class != ClassSelfJoinOpen {
		t.Errorf("R(x,y),R(y,z) classified %v, want open", c2.Class)
	}
}

// TestDichotomyExhaustive enumerates every 3-atom self-join-free shape
// over 3 variables (each atom a nonempty subset of {x,y,z} × flag) and
// checks Corollary 4.14: exactly one of weakly-linear / rewrites-to-hard
// holds.
func TestDichotomyExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive dichotomy check")
	}
	subsets := [][]int{{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}}
	names := []string{"P", "Q", "R"}
	count, hard := 0, 0
	for i := 0; i < len(subsets)*2; i++ {
		for j := 0; j < len(subsets)*2; j++ {
			for k := 0; k < len(subsets)*2; k++ {
				mk := func(n string, idx int) shape.Atom {
					return shape.A(n, idx%2 == 0, subsets[idx/2]...)
				}
				s := shape.New(mk(names[0], i), mk(names[1], j), mk(names[2], k))
				_, _, _, wl, err := WeaklyLinear(s)
				if err != nil {
					t.Fatal(err)
				}
				_, _, rh, err := RewriteToHard(s)
				if err != nil {
					t.Fatal(err)
				}
				if wl == rh {
					t.Fatalf("dichotomy violated for %v: weaklyLinear=%v rewritesToHard=%v", s, wl, rh)
				}
				count++
				if rh {
					hard++
				}
			}
		}
	}
	if hard == 0 {
		t.Error("expected some hard shapes in the enumeration")
	}
	t.Logf("checked %d shapes, %d NP-hard", count, hard)
}

// TestDichotomyRandom4Atoms samples random *connected* 4-atom shapes
// over 4 variables and checks the XOR property. Connectivity matters:
// the paper's dichotomy machinery has a gap for disconnected queries
// (see TestDichotomyGapDisconnected).
func TestDichotomyRandom4Atoms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	names := []string{"P", "Q", "R", "S"}
	trials := 0
	for trials < 200 {
		var atoms []shape.Atom
		for i := 0; i < 4; i++ {
			var vars []int
			for v := 0; v < 4; v++ {
				if rng.Intn(2) == 0 {
					vars = append(vars, v)
				}
			}
			if len(vars) == 0 {
				vars = []int{rng.Intn(4)}
			}
			atoms = append(atoms, shape.A(names[i], rng.Intn(2) == 0, vars...))
		}
		s := shape.New(atoms...)
		if !s.Connected() {
			continue
		}
		trials++
		_, _, _, wl, err := WeaklyLinear(s)
		if err != nil {
			t.Fatal(err)
		}
		_, _, rh, err := RewriteToHard(s)
		if err != nil {
			t.Fatal(err)
		}
		if wl == rh {
			t.Fatalf("trial %d: dichotomy violated for %v (wl=%v rh=%v)", trials, s, wl, rh)
		}
	}
}

// TestDichotomyGapDisconnected documents a gap in the paper's dichotomy
// machinery, found by random search during this reproduction: for
// Pⁿ(y), Qⁿ(x,w), Rⁿ(x,z), Sⁿ(z,w) — a triangle plus an isolated
// endogenous atom — the isolated atom can never be deleted (Definition
// 4.6 requires it exogenous or dominated) and nothing is dominated, so
// the query is neither weakly linear nor rewritable to h₁*/h₂*/h₃*,
// contradicting Theorem 4.13's claim that all final queries are
// canonical. The query is in fact NP-hard (its instances with a single
// P-tuple embed the h₂* triangle hitting-set problem). Classify reports
// ClassUnresolved and the engine uses exact search.
func TestDichotomyGapDisconnected(t *testing.T) {
	s := shape.New(
		shape.A("P", true, 1),
		shape.A("Q", true, 0, 3),
		shape.A("R", true, 0, 2),
		shape.A("S", true, 2, 3),
	)
	if s.Connected() {
		t.Fatal("test shape should be disconnected")
	}
	_, _, _, wl, err := WeaklyLinear(s)
	if err != nil {
		t.Fatal(err)
	}
	if wl {
		t.Fatal("shape unexpectedly weakly linear")
	}
	_, _, rh, err := RewriteToHard(s)
	if err != nil {
		t.Fatal(err)
	}
	if rh {
		t.Fatal("shape unexpectedly rewrites to a hard query")
	}
	c := classifyT(t, s)
	if c.Class != ClassUnresolved {
		t.Errorf("classified %v, want unresolved", c.Class)
	}
}

// TestSoundVsPaperDomination: the paper's Example 4.12b query
// Rⁿ(x,y),Sⁿ(y,z),Tⁿ(z,x),Vⁿ(x) is weakly linear under Definition 4.9
// (V dominates R and T), but the domination is not
// responsibility-preserving (V covers x but not y, resp. not z), so the
// sound rule rejects it. The semantic counterexample lives in
// internal/core's tests.
func TestSoundVsPaperDomination(t *testing.T) {
	s := shape.New(
		shape.A("R", true, 0, 1),
		shape.A("S", true, 1, 2),
		shape.A("T", true, 2, 0),
		shape.A("V", true, 0),
	)
	paper, err := Classify(s)
	if err != nil {
		t.Fatal(err)
	}
	if !paper.Class.PTime() {
		t.Fatalf("paper classification = %v, want PTIME", paper.Class)
	}
	sound, err := ClassifySound(s)
	if err != nil {
		t.Fatal(err)
	}
	if sound.Class.PTime() {
		t.Fatalf("sound classification = %v, want not PTIME", sound.Class)
	}
}

// TestSoundDominationEqualVarsets: equal variable sets dominate soundly
// (per-valuation bijection), so Rⁿ(x,y),Pⁿ(x,y),Sⁿ(y,z),Tⁿ(z,x) — a
// triangle with a doubled edge — is still classified like the triangle.
func TestSoundDominationEqualVarsets(t *testing.T) {
	s := shape.New(
		shape.A("R", true, 0, 1),
		shape.A("P", true, 0, 1),
		shape.A("S", false, 1, 2),
		shape.A("T", true, 2, 0),
	)
	// With S exogenous this is Example 4.12a plus a doubled edge: PTIME.
	sound, err := ClassifySound(s)
	if err != nil {
		t.Fatal(err)
	}
	if !sound.Class.PTime() {
		t.Errorf("sound classification = %v, want PTIME", sound.Class)
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		ClassLinear:       "PTIME (linear)",
		ClassWeaklyLinear: "PTIME (weakly linear)",
		ClassNPHard:       "NP-hard",
	} {
		if c.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(c), c.String(), want)
		}
	}
	if !ClassLinear.PTime() || ClassNPHard.PTime() {
		t.Error("PTime() misclassifies")
	}
}

func TestReplayRequiresPTime(t *testing.T) {
	c := &Certificate{Class: ClassNPHard}
	if _, _, err := c.Replay(); err == nil {
		t.Error("expected error replaying NP-hard certificate")
	}
}
