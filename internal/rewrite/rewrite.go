// Package rewrite decides the responsibility dichotomy of Meliou et al.
// (VLDB 2010), Corollary 4.14: a self-join-free conjunctive query is
// either weakly linear (responsibility in PTIME via Algorithm 1) or
// NP-hard (it rewrites to one of the canonical hard queries h₁*, h₂*,
// h₃* of Theorem 4.1).
//
// Both sides are decided by breadth-first search over canonical query
// shapes: the weakening closure ⇒* (Definition 4.9) searched for a
// linear shape, and the rewriting closure ⇝* (Definition 4.6) searched
// for a hard shape. Successful searches return step-by-step
// certificates. The two searches are mutually exclusive and exhaustive
// for self-join-free queries (the dichotomy theorem); the test suite
// verifies this XOR property over enumerated and random shapes.
package rewrite

import (
	"errors"
	"fmt"

	"github.com/querycause/querycause/internal/shape"
)

// Class is the complexity classification of Why-So responsibility for a
// conjunctive query.
type Class int

const (
	// ClassLinear: the query is linear (Definition 4.4); Algorithm 1
	// applies directly.
	ClassLinear Class = iota
	// ClassWeaklyLinear: a weakening sequence yields a linear query;
	// responsibility is PTIME (Corollary 4.11).
	ClassWeaklyLinear
	// ClassNPHard: the query rewrites to h₁*, h₂* or h₃*; computing
	// responsibility is NP-hard (Lemma 4.7 + Theorem 4.1).
	ClassNPHard
	// ClassSelfJoinHard: the query matches Proposition 4.16
	// (Rⁿ(x),S(x,y),Rⁿ(y)); NP-hard.
	ClassSelfJoinHard
	// ClassSelfJoinOpen: the query has self-joins and matches no known
	// hard pattern; the dichotomy is open (Section 4.1), so exact search
	// is used.
	ClassSelfJoinOpen
	// ClassUnresolved: the query falls into a gap of the paper's
	// dichotomy machinery — it is neither weakly linear nor rewritable to
	// a canonical hard query. This happens for disconnected queries
	// (e.g. an isolated endogenous atom alongside a triangle), which
	// Definition 4.6 can never delete; Theorem 4.13 implicitly assumes
	// connectivity. The engine falls back to exact search.
	ClassUnresolved
)

func (c Class) String() string {
	switch c {
	case ClassLinear:
		return "PTIME (linear)"
	case ClassWeaklyLinear:
		return "PTIME (weakly linear)"
	case ClassNPHard:
		return "NP-hard"
	case ClassSelfJoinHard:
		return "NP-hard (self-join, Prop. 4.16)"
	case ClassSelfJoinOpen:
		return "open (self-join)"
	case ClassUnresolved:
		return "unresolved (dichotomy gap)"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// PTime reports whether the class admits the polynomial flow algorithm.
func (c Class) PTime() bool { return c == ClassLinear || c == ClassWeaklyLinear }

// Certificate is the result of classification, carrying a replayable
// proof for whichever side of the dichotomy holds.
type Certificate struct {
	Class Class
	// Input is the classified shape.
	Input *shape.Shape
	// Rule is the domination rule the certificate was derived under.
	Rule shape.DominationRule

	// Weakening is the op sequence turning Input into Weakened (empty if
	// the query is already linear); Weakened is linear with atom order
	// LinearOrder. Set only for PTIME classes.
	Weakening   []shape.Op
	Weakened    *shape.Shape
	LinearOrder []int

	// Rewrites is the op sequence turning Input into a shape isomorphic
	// to Hard. Set only for ClassNPHard.
	Rewrites []shape.Op
	Hard     shape.HardQuery
}

// ErrSearchBudget is returned if a closure search exceeds its state
// budget; it indicates a query far larger than the sizes the dichotomy
// machinery is meant for (queries are fixed and small — data complexity).
var ErrSearchBudget = errors.New("rewrite: state budget exceeded")

// DefaultBudget bounds the number of distinct shapes explored per
// search.
const DefaultBudget = 2_000_000

type node struct {
	s      *shape.Shape
	parent *node
	op     shape.Op
}

func (n *node) path() []shape.Op {
	var rev []shape.Op
	for cur := n; cur.parent != nil; cur = cur.parent {
		rev = append(rev, cur.op)
	}
	out := make([]shape.Op, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// WeaklyLinear searches the weakening closure of s (under the paper's
// Definition 4.9) for a linear shape. On success it returns the op
// sequence, the final shape, and a linear atom order.
func WeaklyLinear(s *shape.Shape) (ops []shape.Op, final *shape.Shape, order []int, found bool, err error) {
	return WeaklyLinearUnder(s, shape.PaperDomination)
}

// WeaklyLinearUnder is WeaklyLinear with an explicit domination rule.
// Under shape.SoundDomination every weakening step provably preserves
// responsibilities, so a successful search licenses Algorithm 1.
func WeaklyLinearUnder(s *shape.Shape, rule shape.DominationRule) (ops []shape.Op, final *shape.Shape, order []int, found bool, err error) {
	visited := map[string]bool{s.Key(): true}
	queue := []*node{{s: s}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if ord, ok := n.s.LinearOrder(); ok {
			return n.path(), n.s, ord, true, nil
		}
		for _, ap := range n.s.WeakeningsUnder(rule) {
			k := ap.Result.Key()
			if visited[k] {
				continue
			}
			visited[k] = true
			if len(visited) > DefaultBudget {
				return nil, nil, nil, false, ErrSearchBudget
			}
			queue = append(queue, &node{s: ap.Result, parent: n, op: ap.Op})
		}
	}
	return nil, nil, nil, false, nil
}

// RewriteToHard searches the rewriting closure of s for one of the
// canonical hard queries. On success it returns the rewrite chain and
// the matched hard query.
func RewriteToHard(s *shape.Shape) (ops []shape.Op, hard shape.HardQuery, found bool, err error) {
	if h, ok := s.MatchHard(); ok {
		return nil, h, true, nil
	}
	visited := map[string]bool{s.Key(): true}
	queue := []*node{{s: s}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, ap := range n.s.Rewrites() {
			// Hard queries have ≥3 atoms and exactly 3 variables; both
			// quantities are non-increasing under rewriting.
			if len(ap.Result.Atoms) < 3 || len(ap.Result.UsedVars()) < 3 {
				continue
			}
			k := ap.Result.Key()
			if visited[k] {
				continue
			}
			visited[k] = true
			if len(visited) > DefaultBudget {
				return nil, "", false, ErrSearchBudget
			}
			child := &node{s: ap.Result, parent: n, op: ap.Op}
			if h, ok := ap.Result.MatchHard(); ok {
				return child.path(), h, true, nil
			}
			queue = append(queue, child)
		}
	}
	return nil, "", false, nil
}

// Classify decides the responsibility complexity of the query shape
// under the paper's rules (Definitions 4.6 and 4.9). For self-join-free
// shapes it returns a PTIME certificate (weakening + linear order) or an
// NP-hardness certificate (rewrite chain to a canonical hard query), per
// the dichotomy of Corollary 4.14. Queries in the dichotomy gap (see
// ClassUnresolved) are reported as such rather than misclassified.
func Classify(s *shape.Shape) (*Certificate, error) {
	return classify(s, shape.PaperDomination)
}

// ClassifySound classifies under the responsibility-preserving
// SoundDomination rule. A PTIME result licenses the flow algorithm; all
// other classes are handled by exact search in the engine. Queries that
// are weakly linear under the paper's rule but not under the sound rule
// come back ClassUnresolved here (the paper would claim PTIME; see the
// Example 4.12 counterexample in internal/core).
func ClassifySound(s *shape.Shape) (*Certificate, error) {
	return classify(s, shape.SoundDomination)
}

func classify(s *shape.Shape, rule shape.DominationRule) (*Certificate, error) {
	if s.HasSelfJoin() {
		if s.MatchSelfJoinHard() {
			return &Certificate{Class: ClassSelfJoinHard, Input: s, Rule: rule}, nil
		}
		return &Certificate{Class: ClassSelfJoinOpen, Input: s, Rule: rule}, nil
	}
	ops, final, order, found, err := WeaklyLinearUnder(s, rule)
	if err != nil {
		return nil, err
	}
	if found {
		class := ClassWeaklyLinear
		if len(ops) == 0 {
			class = ClassLinear
		}
		return &Certificate{
			Class: class, Input: s, Rule: rule,
			Weakening: ops, Weakened: final, LinearOrder: order,
		}, nil
	}
	rops, hard, rfound, err := RewriteToHard(s)
	if err != nil {
		return nil, err
	}
	if !rfound {
		return &Certificate{Class: ClassUnresolved, Input: s, Rule: rule}, nil
	}
	return &Certificate{Class: ClassNPHard, Input: s, Rule: rule, Rewrites: rops, Hard: hard}, nil
}

// Replay applies the certificate's weakening ops to its input and
// re-derives the linear order, validating each side condition under the
// certificate's domination rule. It is used by the responsibility engine
// and by tests.
func (c *Certificate) Replay() (*shape.Shape, []int, error) {
	if !c.Class.PTime() {
		return nil, nil, fmt.Errorf("rewrite: no weakening certificate for class %v", c.Class)
	}
	cur := c.Input
	for _, op := range c.Weakening {
		next, err := cur.ApplyWeakeningUnder(op, c.Rule)
		if err != nil {
			return nil, nil, err
		}
		cur = next
	}
	order, ok := cur.LinearOrder()
	if !ok {
		return nil, nil, fmt.Errorf("rewrite: certificate's weakened shape is not linear: %v", cur)
	}
	return cur, order, nil
}
