package datalog

import (
	"strings"
	"testing"

	"github.com/querycause/querycause/internal/rel"
)

func TestSimpleJoin(t *testing.T) {
	edb := MapEDB{
		"R": {{"a", "b"}, {"b", "c"}},
	}
	p := &Program{Rules: []Rule{
		{Head: Lit("P", V("x"), V("z")), Body: []Literal{Lit("R", V("x"), V("y")), Lit("R", V("y"), V("z"))}},
	}}
	res, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Facts("P")
	if len(rows) != 1 || rows[0][0] != "a" || rows[0][1] != "c" {
		t.Fatalf("P = %v, want [[a c]]", rows)
	}
}

func TestNegation(t *testing.T) {
	edb := MapEDB{
		"R": {{"a"}, {"b"}, {"c"}},
		"S": {{"b"}},
	}
	p := &Program{Rules: []Rule{
		{Head: Lit("Only", V("x")), Body: []Literal{Lit("R", V("x")), Not("S", V("x"))}},
	}}
	res, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Facts("Only")
	if len(rows) != 2 || rows[0][0] != "a" || rows[1][0] != "c" {
		t.Fatalf("Only = %v, want [[a] [c]]", rows)
	}
}

func TestNegationOverIDB(t *testing.T) {
	edb := MapEDB{"R": {{"a"}, {"b"}}, "Mark": {{"a"}}}
	p := &Program{Rules: []Rule{
		{Head: Lit("I", V("x")), Body: []Literal{Lit("R", V("x")), Lit("Mark", V("x"))}},
		{Head: Lit("J", V("x")), Body: []Literal{Lit("R", V("x")), Not("I", V("x"))}},
	}}
	res, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Has("J", "b") || res.Has("J", "a") {
		t.Fatalf("J = %v, want [[b]]", res.Facts("J"))
	}
	ns, err := p.NumStrata()
	if err != nil {
		t.Fatal(err)
	}
	if ns != 2 {
		t.Fatalf("strata = %d, want 2", ns)
	}
}

func TestRecursionTransitiveClosure(t *testing.T) {
	edb := MapEDB{"E": {{"1", "2"}, {"2", "3"}, {"3", "4"}}}
	p := &Program{Rules: []Rule{
		{Head: Lit("T", V("x"), V("y")), Body: []Literal{Lit("E", V("x"), V("y"))}},
		{Head: Lit("T", V("x"), V("z")), Body: []Literal{Lit("T", V("x"), V("y")), Lit("E", V("y"), V("z"))}},
	}}
	res, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Facts("T")); got != 6 {
		t.Fatalf("|T| = %d, want 6", got)
	}
	if !res.Has("T", "1", "4") {
		t.Error("missing T(1,4)")
	}
}

func TestUnsafeHeadRejected(t *testing.T) {
	p := &Program{Rules: []Rule{
		{Head: Lit("P", V("x"), V("y")), Body: []Literal{Lit("R", V("x"))}},
	}}
	if _, err := p.Eval(MapEDB{}); err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("expected unsafe-variable error, got %v", err)
	}
}

func TestUnsafeNegationRejected(t *testing.T) {
	p := &Program{Rules: []Rule{
		{Head: Lit("P", V("x")), Body: []Literal{Lit("R", V("x")), Not("S", V("y"))}},
	}}
	if _, err := p.Eval(MapEDB{}); err == nil {
		t.Fatal("expected unsafe-negation error")
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	p := &Program{Rules: []Rule{
		{Head: Lit("P", V("x")), Body: []Literal{Lit("R", V("x")), Not("Q", V("x"))}},
		{Head: Lit("Q", V("x")), Body: []Literal{Lit("R", V("x")), Not("P", V("x"))}},
	}}
	if _, err := p.Eval(MapEDB{"R": {{"a"}}}); err == nil {
		t.Fatal("expected stratification error")
	}
}

func TestNegatedHeadRejected(t *testing.T) {
	p := &Program{Rules: []Rule{
		{Head: Not("P", V("x")), Body: []Literal{Lit("R", V("x"))}},
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("expected negated-head error")
	}
}

func TestConstraintNeq(t *testing.T) {
	edb := MapEDB{"R": {{"a", "a"}, {"a", "b"}}}
	p := &Program{Rules: []Rule{
		{
			Head: Lit("Diff", V("x"), V("y")),
			Body: []Literal{Lit("R", V("x"), V("y"))},
			Neq:  []Constraint{{Left: []Term{V("x")}, Right: []Term{V("y")}}},
		},
	}}
	res, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Facts("Diff")
	if len(rows) != 1 || rows[0][1] != "b" {
		t.Fatalf("Diff = %v, want [[a b]]", rows)
	}
}

func TestConstraintTupleNeq(t *testing.T) {
	// Vector disequality: (x1,x2) ≠ (y1,y2) holds iff they differ
	// somewhere.
	edb := MapEDB{"P": {{"a", "b", "a", "b"}, {"a", "b", "a", "c"}}}
	p := &Program{Rules: []Rule{
		{
			Head: Lit("D", V("x1"), V("x2"), V("y1"), V("y2")),
			Body: []Literal{Lit("P", V("x1"), V("x2"), V("y1"), V("y2"))},
			Neq: []Constraint{{
				Left:  []Term{V("x1"), V("x2")},
				Right: []Term{V("y1"), V("y2")},
			}},
		},
	}}
	res, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Facts("D")
	if len(rows) != 1 || rows[0][3] != "c" {
		t.Fatalf("D = %v", rows)
	}
}

func TestConstraintArityMismatch(t *testing.T) {
	p := &Program{Rules: []Rule{
		{
			Head: Lit("D", V("x")),
			Body: []Literal{Lit("R", V("x"))},
			Neq:  []Constraint{{Left: []Term{V("x")}, Right: []Term{V("x"), V("x")}}},
		},
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestConstantsInRules(t *testing.T) {
	edb := MapEDB{"R": {{"a", "x"}, {"b", "x"}, {"a", "y"}}}
	p := &Program{Rules: []Rule{
		{Head: Lit("P", V("v")), Body: []Literal{Lit("R", C("a"), V("v"))}},
	}}
	res, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Facts("P")); got != 2 {
		t.Fatalf("|P| = %d, want 2", got)
	}
}

func TestConstantHead(t *testing.T) {
	edb := MapEDB{"R": {{"a"}}}
	p := &Program{Rules: []Rule{
		{Head: Lit("Flag", C("yes")), Body: []Literal{Lit("R", V("x"))}},
	}}
	res, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Has("Flag", "yes") {
		t.Fatal("missing Flag(yes)")
	}
}

func TestArityMismatchFactSkipped(t *testing.T) {
	// EDB facts of the wrong arity must not bind.
	edb := MapEDB{"R": {{"a"}, {"a", "b"}}}
	p := &Program{Rules: []Rule{
		{Head: Lit("P", V("x")), Body: []Literal{Lit("R", V("x"))}},
	}}
	res, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Facts("P")); got != 1 {
		t.Fatalf("|P| = %d, want 1", got)
	}
}

func TestProgramString(t *testing.T) {
	p := &Program{Rules: []Rule{
		{Head: Lit("P", V("x")), Body: []Literal{Lit("R", V("x"), C("k")), Not("S", V("x"))}},
	}}
	s := p.String()
	for _, want := range []string{"P(x)", "R(x,'k')", "¬S(x)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestDeterministicFactOrder(t *testing.T) {
	edb := MapEDB{"R": {{"c"}, {"a"}, {"b"}}}
	p := &Program{Rules: []Rule{
		{Head: Lit("P", V("x")), Body: []Literal{Lit("R", V("x"))}},
	}}
	res, _ := p.Eval(edb)
	rows := res.Facts("P")
	if rows[0][0] != "a" || rows[1][0] != "b" || rows[2][0] != "c" {
		t.Fatalf("rows not sorted: %v", rows)
	}
}

var _ EDB = MapEDB{} // interface check

func TestRelValueRoundtrip(t *testing.T) {
	// Ensure rel.Value flows through unmodified (type alias sanity).
	edb := MapEDB{"R": {{rel.Value("π")}}}
	p := &Program{Rules: []Rule{{Head: Lit("P", V("x")), Body: []Literal{Lit("R", V("x"))}}}}
	res, _ := p.Eval(edb)
	if !res.Has("P", "π") {
		t.Fatal("unicode value lost")
	}
}
