// Package datalog implements a stratified-Datalog-with-negation
// evaluator, the target language of Theorem 3.4 of Meliou et al.
// (VLDB 2010): the set of causes of a conjunctive query is computable by
// a non-recursive stratified Datalog¬ program with two strata.
//
// The engine is general: it supports recursion within a stratum (naive
// fixpoint), negated literals, and a tuple-disequality built-in
// constraint Neq(s̄, t̄) (true iff the two term vectors differ in some
// position), which the cause-program generator uses for the strictness
// guard on self-join queries. Rules must be safe: every variable of the
// head, of a negated literal, and of a constraint must occur in a
// positive body literal.
package datalog

import (
	"fmt"
	"sort"
	"strings"

	"github.com/querycause/querycause/internal/rel"
)

// Term is a variable or a constant.
type Term struct {
	IsVar bool
	Var   string
	Const rel.Value
}

// V returns a variable term.
func V(name string) Term { return Term{IsVar: true, Var: name} }

// C returns a constant term.
func C(v rel.Value) Term { return Term{Const: v} }

func (t Term) String() string {
	if t.IsVar {
		return t.Var
	}
	return "'" + string(t.Const) + "'"
}

// Literal is a possibly negated predicate application.
type Literal struct {
	Pred    string
	Terms   []Term
	Negated bool
}

// Lit builds a positive literal.
func Lit(pred string, terms ...Term) Literal {
	return Literal{Pred: pred, Terms: terms}
}

// Not builds a negated literal.
func Not(pred string, terms ...Term) Literal {
	return Literal{Pred: pred, Terms: terms, Negated: true}
}

func (l Literal) String() string {
	parts := make([]string, len(l.Terms))
	for i, t := range l.Terms {
		parts[i] = t.String()
	}
	s := fmt.Sprintf("%s(%s)", l.Pred, strings.Join(parts, ","))
	if l.Negated {
		return "¬" + s
	}
	return s
}

// Constraint is the built-in tuple disequality Neq(Left, Right): true
// iff the vectors differ in at least one position. Both sides must have
// equal length and be fully bound at evaluation time.
type Constraint struct {
	Left, Right []Term
}

func (c Constraint) String() string {
	l := make([]string, len(c.Left))
	r := make([]string, len(c.Right))
	for i, t := range c.Left {
		l[i] = t.String()
	}
	for i, t := range c.Right {
		r[i] = t.String()
	}
	return fmt.Sprintf("(%s) ≠ (%s)", strings.Join(l, ","), strings.Join(r, ","))
}

// Rule is head :- body, constraints.
type Rule struct {
	Head Literal
	Body []Literal
	Neq  []Constraint
}

func (r Rule) String() string {
	var parts []string
	for _, l := range r.Body {
		parts = append(parts, l.String())
	}
	for _, c := range r.Neq {
		parts = append(parts, c.String())
	}
	return fmt.Sprintf("%s :- %s", r.Head.String(), strings.Join(parts, ", "))
}

// Program is a set of rules evaluated bottom-up over an EDB.
type Program struct {
	Rules []Rule
}

func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}

// EDB supplies extensional facts by predicate name. Unknown predicates
// return nil.
type EDB interface {
	Facts(pred string) [][]rel.Value
}

// MapEDB is a simple in-memory EDB.
type MapEDB map[string][][]rel.Value

// Facts implements EDB.
func (m MapEDB) Facts(pred string) [][]rel.Value { return m[pred] }

// idbPreds returns the set of predicates defined by rule heads.
func (p *Program) idbPreds() map[string]bool {
	out := make(map[string]bool)
	for _, r := range p.Rules {
		out[r.Head.Pred] = true
	}
	return out
}

// Validate checks safety: head, negated-literal, and constraint
// variables must occur in positive body literals; negated heads are
// forbidden; constraint sides must have equal arity.
func (p *Program) Validate() error {
	for i, r := range p.Rules {
		if r.Head.Negated {
			return fmt.Errorf("datalog: rule %d: negated head", i)
		}
		pos := make(map[string]bool)
		for _, l := range r.Body {
			if !l.Negated {
				for _, t := range l.Terms {
					if t.IsVar {
						pos[t.Var] = true
					}
				}
			}
		}
		check := func(ts []Term, what string) error {
			for _, t := range ts {
				if t.IsVar && !pos[t.Var] {
					return fmt.Errorf("datalog: rule %d (%s): unsafe variable %s in %s", i, r, t.Var, what)
				}
			}
			return nil
		}
		if err := check(r.Head.Terms, "head"); err != nil {
			return err
		}
		for _, l := range r.Body {
			if l.Negated {
				if err := check(l.Terms, "negated literal"); err != nil {
					return err
				}
			}
		}
		for _, c := range r.Neq {
			if len(c.Left) != len(c.Right) {
				return fmt.Errorf("datalog: rule %d: constraint arity mismatch", i)
			}
			if err := check(c.Left, "constraint"); err != nil {
				return err
			}
			if err := check(c.Right, "constraint"); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stratify orders IDB predicates into strata such that negative
// dependencies cross strictly downward. It returns the list of strata
// (each a sorted list of predicate names) or an error if negation is
// cyclic (the program is not stratifiable).
func (p *Program) Stratify() ([][]string, error) {
	idb := p.idbPreds()
	// stratum numbers via longest-path over dependency edges:
	// positive edge u→v (v's rule uses u positively): stratum(v) ≥ stratum(u)
	// negative edge u→v: stratum(v) ≥ stratum(u)+1.
	strat := make(map[string]int)
	for pred := range idb {
		strat[pred] = 0
	}
	n := len(strat)
	for iter := 0; ; iter++ {
		if iter > n*n+1 {
			return nil, fmt.Errorf("datalog: program is not stratifiable (cyclic negation)")
		}
		changed := false
		for _, r := range p.Rules {
			h := r.Head.Pred
			for _, l := range r.Body {
				if !idb[l.Pred] {
					continue
				}
				need := strat[l.Pred]
				if l.Negated {
					need++
				}
				if strat[h] < need {
					strat[h] = need
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	maxS := 0
	for _, s := range strat {
		if s > maxS {
			maxS = s
		}
	}
	out := make([][]string, maxS+1)
	var preds []string
	for pred := range strat {
		preds = append(preds, pred)
	}
	sort.Strings(preds)
	for _, pred := range preds {
		out[strat[pred]] = append(out[strat[pred]], pred)
	}
	return out, nil
}

// NumStrata returns the number of strata of the program (1 for purely
// positive programs). Theorem 3.4's cause programs have exactly 2.
func (p *Program) NumStrata() (int, error) {
	s, err := p.Stratify()
	if err != nil {
		return 0, err
	}
	return len(s), nil
}

// Result holds the IDB facts derived by evaluation.
type Result struct {
	facts map[string]*factSet
}

// Facts returns the derived facts of a predicate, sorted for
// determinism.
func (r *Result) Facts(pred string) [][]rel.Value {
	fs := r.facts[pred]
	if fs == nil {
		return nil
	}
	out := append([][]rel.Value(nil), fs.rows...)
	sort.Slice(out, func(i, j int) bool { return rowLess(out[i], out[j]) })
	return out
}

// Has reports whether the fact was derived.
func (r *Result) Has(pred string, vals ...rel.Value) bool {
	fs := r.facts[pred]
	return fs != nil && fs.has(vals)
}

func rowLess(a, b []rel.Value) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

type factSet struct {
	rows [][]rel.Value
	seen map[string]bool
}

func newFactSet() *factSet {
	return &factSet{seen: make(map[string]bool)}
}

func key(row []rel.Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = string(v)
	}
	return strings.Join(parts, "\x00")
}

func (f *factSet) add(row []rel.Value) bool {
	k := key(row)
	if f.seen[k] {
		return false
	}
	f.seen[k] = true
	f.rows = append(f.rows, row)
	return true
}

func (f *factSet) has(row []rel.Value) bool { return f != nil && f.seen[key(row)] }

// Eval evaluates the program over the EDB: validation, stratification,
// then per-stratum naive fixpoint.
func (p *Program) Eval(edb EDB) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	strata, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	idb := p.idbPreds()
	res := &Result{facts: make(map[string]*factSet)}
	strataIndex := make(map[string]int)
	for i, preds := range strata {
		for _, pred := range preds {
			strataIndex[pred] = i
		}
	}
	for si := range strata {
		// Fixpoint over the rules whose head is in this stratum.
		var rules []Rule
		for _, r := range p.Rules {
			if strataIndex[r.Head.Pred] == si {
				rules = append(rules, r)
			}
		}
		for {
			changed := false
			for _, r := range rules {
				rows, err := evalRule(r, edb, res, idb)
				if err != nil {
					return nil, err
				}
				fs := res.facts[r.Head.Pred]
				if fs == nil {
					fs = newFactSet()
					res.facts[r.Head.Pred] = fs
				}
				for _, row := range rows {
					if fs.add(row) {
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
	}
	return res, nil
}

// evalRule computes all head instantiations of a rule under the current
// facts.
func evalRule(r Rule, edb EDB, res *Result, idb map[string]bool) ([][]rel.Value, error) {
	var positives, negatives []Literal
	for _, l := range r.Body {
		if l.Negated {
			negatives = append(negatives, l)
		} else {
			positives = append(positives, l)
		}
	}
	lookup := func(pred string) [][]rel.Value {
		if idb[pred] {
			fs := res.facts[pred]
			if fs == nil {
				return nil
			}
			return fs.rows
		}
		return edb.Facts(pred)
	}
	var out [][]rel.Value
	binding := make(map[string]rel.Value)

	var emit func()
	emit = func() {
		// Negated literals.
		for _, l := range negatives {
			row := make([]rel.Value, len(l.Terms))
			for i, t := range l.Terms {
				if t.IsVar {
					row[i] = binding[t.Var]
				} else {
					row[i] = t.Const
				}
			}
			for _, fact := range lookup(l.Pred) {
				if rowEq(fact, row) {
					return
				}
			}
		}
		// Constraints.
		for _, c := range r.Neq {
			if !neqHolds(c, binding) {
				return
			}
		}
		row := make([]rel.Value, len(r.Head.Terms))
		for i, t := range r.Head.Terms {
			if t.IsVar {
				row[i] = binding[t.Var]
			} else {
				row[i] = t.Const
			}
		}
		out = append(out, row)
	}

	var join func(i int)
	join = func(i int) {
		if i == len(positives) {
			emit()
			return
		}
		l := positives[i]
		for _, fact := range lookup(l.Pred) {
			if len(fact) != len(l.Terms) {
				continue
			}
			var bound []string
			ok := true
			for j, t := range l.Terms {
				if !t.IsVar {
					if t.Const != fact[j] {
						ok = false
						break
					}
					continue
				}
				if v, has := binding[t.Var]; has {
					if v != fact[j] {
						ok = false
						break
					}
					continue
				}
				binding[t.Var] = fact[j]
				bound = append(bound, t.Var)
			}
			if ok {
				join(i + 1)
			}
			for _, v := range bound {
				delete(binding, v)
			}
		}
	}
	join(0)
	return out, nil
}

func rowEq(a, b []rel.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func neqHolds(c Constraint, binding map[string]rel.Value) bool {
	for i := range c.Left {
		l, r := c.Left[i], c.Right[i]
		var lv, rv rel.Value
		if l.IsVar {
			lv = binding[l.Var]
		} else {
			lv = l.Const
		}
		if r.IsVar {
			rv = binding[r.Var]
		} else {
			rv = r.Const
		}
		if lv != rv {
			return true
		}
	}
	return false
}
