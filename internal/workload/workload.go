// Package workload generates parameterized database instances for the
// benchmark harness and property tests: the query families of the
// paper's complexity analysis (linear chains, the canonical hard
// triangle h₂*, its PTIME variant with an exogenous edge, and the star
// query h₁*) at controllable sizes.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/querycause/querycause/internal/rel"
)

// val renders a domain element.
func val(i int) rel.Value { return rel.Value(fmt.Sprintf("d%d", i)) }

// Chain2 builds an instance of q :- R(x,y), S(y,z) with n tuples per
// relation over a domain sized to keep the join selective; all tuples
// endogenous. Returns the database, the query, and a tuple guaranteed
// to be an actual cause (a tuple on some valuation).
func Chain2(seed int64, n int) (*rel.Database, *rel.Query, rel.TupleID) {
	rng := rand.New(rand.NewSource(seed))
	dom := domainFor(n)
	db := rel.NewDatabase()
	first := db.MustAdd("R", true, val(0), val(1))
	db.MustAdd("S", true, val(1), val(2))
	for i := 1; i < n; i++ {
		db.MustAdd("R", true, val(rng.Intn(dom)), val(rng.Intn(dom)))
		db.MustAdd("S", true, val(rng.Intn(dom)), val(rng.Intn(dom)))
	}
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
	)
	return db, q, first
}

// Chain3 builds q :- R(x,y), S(y,z), T(z,w) similarly.
func Chain3(seed int64, n int) (*rel.Database, *rel.Query, rel.TupleID) {
	rng := rand.New(rand.NewSource(seed))
	dom := domainFor(n)
	db := rel.NewDatabase()
	first := db.MustAdd("R", true, val(0), val(1))
	db.MustAdd("S", true, val(1), val(2))
	db.MustAdd("T", true, val(2), val(3))
	for i := 1; i < n; i++ {
		db.MustAdd("R", true, val(rng.Intn(dom)), val(rng.Intn(dom)))
		db.MustAdd("S", true, val(rng.Intn(dom)), val(rng.Intn(dom)))
		db.MustAdd("T", true, val(rng.Intn(dom)), val(rng.Intn(dom)))
	}
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z"), rel.V("w")),
	)
	return db, q, first
}

// Triangle builds the canonical hard query h₂* :- R(x,y),S(y,z),T(z,x)
// with n tuples per relation, all endogenous (NP-hard responsibility).
func Triangle(seed int64, n int) (*rel.Database, *rel.Query, rel.TupleID) {
	db, q, id := triangle(seed, n, true)
	return db, q, id
}

// TriangleExoS is the Example 4.12a PTIME variant: S exogenous.
func TriangleExoS(seed int64, n int) (*rel.Database, *rel.Query, rel.TupleID) {
	db, q, id := triangle(seed, n, false)
	return db, q, id
}

func triangle(seed int64, n int, sEndo bool) (*rel.Database, *rel.Query, rel.TupleID) {
	rng := rand.New(rand.NewSource(seed))
	dom := domainFor(n)
	db := rel.NewDatabase()
	first := db.MustAdd("R", true, val(0), val(1))
	db.MustAdd("S", sEndo, val(1), val(2))
	db.MustAdd("T", true, val(2), val(0))
	for i := 1; i < n; i++ {
		db.MustAdd("R", true, val(rng.Intn(dom)), val(rng.Intn(dom)))
		db.MustAdd("S", sEndo, val(rng.Intn(dom)), val(rng.Intn(dom)))
		db.MustAdd("T", true, val(rng.Intn(dom)), val(rng.Intn(dom)))
	}
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z"), rel.V("x")),
	)
	return db, q, first
}

// Star builds h₁* :- A(x),B(y),C(z),W(x,y,z) with n unary tuples per
// relation and 2n triples, all endogenous.
func Star(seed int64, n int) (*rel.Database, *rel.Query, rel.TupleID) {
	rng := rand.New(rand.NewSource(seed))
	db := rel.NewDatabase()
	first := db.MustAdd("A", true, val(0))
	db.MustAdd("B", true, val(0))
	db.MustAdd("C", true, val(0))
	db.MustAdd("W", true, val(0), val(0), val(0))
	for i := 1; i < n; i++ {
		db.MustAdd("A", true, val(i))
		db.MustAdd("B", true, val(i))
		db.MustAdd("C", true, val(i))
	}
	for i := 1; i < 2*n; i++ {
		db.MustAdd("W", true, val(rng.Intn(n)), val(rng.Intn(n)), val(rng.Intn(n)))
	}
	q := rel.NewBoolean(
		rel.NewAtom("A", rel.V("x")),
		rel.NewAtom("B", rel.V("y")),
		rel.NewAtom("C", rel.V("z")),
		rel.NewAtom("W", rel.V("x"), rel.V("y"), rel.V("z")),
	)
	return db, q, first
}

// WhyNoChain builds a Why-No instance for q :- R(x,y),S(y,z): a sparse
// exogenous real database and n candidate missing tuples per relation.
func WhyNoChain(seed int64, n int) (*rel.Database, *rel.Query) {
	rng := rand.New(rand.NewSource(seed))
	dom := domainFor(n) + 2
	db := rel.NewDatabase()
	// Real database: R side only, so the query is a non-answer.
	for i := 0; i < n; i++ {
		db.MustAdd("R", false, val(rng.Intn(dom)), val(2+rng.Intn(dom)))
	}
	// Candidates.
	for i := 0; i < n; i++ {
		db.MustAdd("S", true, val(2+rng.Intn(dom)), val(rng.Intn(dom)))
	}
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
	)
	return db, q
}

// domainFor keeps join fan-out moderate as instances grow.
func domainFor(n int) int {
	d := 2
	for d*d < n {
		d++
	}
	return d + 1
}
