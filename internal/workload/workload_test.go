package workload

import (
	"testing"

	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/rel"
)

func TestGeneratorsProduceCauses(t *testing.T) {
	type gen func(int64, int) (*rel.Database, *rel.Query, rel.TupleID)
	for name, g := range map[string]gen{
		"chain2": Chain2, "chain3": Chain3, "triangle": Triangle,
		"triangleExoS": TriangleExoS, "star": Star,
	} {
		db, q, target := g(1, 12)
		holds, err := rel.Holds(db, q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !holds {
			t.Fatalf("%s: query must hold (seeded witness row)", name)
		}
		n, err := lineage.NLineageOf(db, q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n.True {
			t.Fatalf("%s: lineage must not be trivially true", name)
		}
		found := false
		for _, c := range n.Conjuncts {
			if c.Contains(target) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: target %v not in any minimal conjunct", name, db.Tuple(target))
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, _, _ := Chain2(7, 20)
	b, _, _ := Chain2(7, 20)
	if a.NumTuples() != b.NumTuples() {
		t.Fatal("same seed, different sizes")
	}
	for i := 0; i < a.NumTuples(); i++ {
		ta, tb := a.Tuple(rel.TupleID(i)), b.Tuple(rel.TupleID(i))
		if ta.Rel != tb.Rel || ta.Args[0] != tb.Args[0] || ta.Args[1] != tb.Args[1] {
			t.Fatalf("tuple %d differs", i)
		}
	}
}

func TestTriangleExoSFlags(t *testing.T) {
	db, _, _ := TriangleExoS(3, 10)
	for _, tup := range db.Relation("S").Tuples() {
		if tup.Endo {
			t.Fatal("S must be exogenous in TriangleExoS")
		}
	}
	for _, tup := range db.Relation("R").Tuples() {
		if !tup.Endo {
			t.Fatal("R must be endogenous")
		}
	}
}

func TestWhyNoChainShape(t *testing.T) {
	db, q := WhyNoChain(5, 15)
	for _, tup := range db.Relation("R").Tuples() {
		if tup.Endo {
			t.Fatal("real database must be exogenous")
		}
	}
	for _, tup := range db.Relation("S").Tuples() {
		if !tup.Endo {
			t.Fatal("candidates must be endogenous")
		}
	}
	if len(q.Atoms) != 2 {
		t.Fatal("query shape wrong")
	}
}

func TestDomainGrowsSublinearly(t *testing.T) {
	if domainFor(4) >= domainFor(100) {
		t.Error("domain should grow with n")
	}
	if domainFor(100) > 12 {
		t.Errorf("domain too large: %d", domainFor(100))
	}
}
