// Package cluster provides the consistent-hash ring that shards
// explanation sessions across querycaused replicas.
//
// Each node in a cluster is identified by its advertised base URL
// (e.g. "http://10.0.0.5:8347"). The ring maps a session ID to the one
// node that owns it; every replica builds the same ring from the same
// membership list, so ownership is agreed upon with no coordination.
// A node that receives a request for a session it does not own either
// 307-redirects the client to the owner or reverse-proxies on its
// behalf (internal/server), and clients that learn the topology from
// GET /v1/cluster route straight to owners.
//
// Membership starts from configuration (the -peers flag) and changes
// at runtime through Versioned: an epoch-numbered Topology installed
// with strictly monotone Apply, minted by Add/Remove on whichever node
// serves the admin request and propagated to the rest. Everything
// above the Ring interface asks only "who owns this key" and "who is
// in the cluster", so a gossip- or lease-backed implementation could
// still slot in without touching the server or client.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring answers ownership questions for a cluster of nodes.
//
// Implementations must be safe for concurrent use and deterministic: two
// rings built from the same membership must agree on every Owner call,
// because replicas and clients each build their own copy.
type Ring interface {
	// Owner returns the node that owns key, or "" for an empty ring.
	Owner(key string) string
	// Nodes returns the member list (deduplicated, sorted).
	Nodes() []string
}

// DefaultVnodes is the number of virtual nodes each member contributes
// to the ring. 64 points per node keeps the key-range spread within a
// few percent of even for small clusters while the ring stays
// tiny (N*64 points).
const DefaultVnodes = 64

// HashRing is a consistent-hash ring with virtual nodes over FNV-1a.
// The zero value is an empty ring; build one with New.
type HashRing struct {
	points []point
	nodes  []string
}

type point struct {
	hash uint64
	node string
}

// New builds a ring over nodes with DefaultVnodes virtual nodes each.
// Duplicate and empty node names are dropped.
func New(nodes []string) *HashRing { return NewWithVnodes(nodes, DefaultVnodes) }

// NewWithVnodes builds a ring with an explicit virtual-node count
// (minimum 1). Higher counts smooth the key-range distribution at the
// cost of a larger (still tiny) sorted point array.
func NewWithVnodes(nodes []string, vnodes int) *HashRing {
	if vnodes < 1 {
		vnodes = 1
	}
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	r := &HashRing{nodes: uniq, points: make([]point, 0, len(uniq)*vnodes)}
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: Hash(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on node name so equal hash points (vanishingly
		// rare) still order deterministically across replicas.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Owner returns the node owning key: the first ring point clockwise
// from the key's hash. Empty ring returns "".
func (r *HashRing) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := Hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].node
}

// Nodes returns the deduplicated, sorted member list.
func (r *HashRing) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Hash is the ring's key hash (FNV-1a 64). Exported so the client and
// server can hash auxiliary keys (e.g. picking an upload node from
// database content) consistently with ring placement.
func Hash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
