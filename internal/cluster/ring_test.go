package cluster

import (
	"fmt"
	"testing"
)

func TestOwnerDeterministicAcrossBuilds(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := New(nodes)
	// Shuffled membership order and duplicates must not change ownership.
	r2 := New([]string{"http://c:3", "http://a:1", "http://b:2", "http://a:1", ""})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("d%d", i)
		if got1, got2 := r1.Owner(key), r2.Owner(key); got1 != got2 {
			t.Fatalf("Owner(%q) differs across builds: %q vs %q", key, got1, got2)
		}
	}
}

func TestOwnerSpread(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := New(nodes)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("d%d", i))]++
	}
	for _, node := range nodes {
		c := counts[node]
		// With 64 vnodes the spread should be roughly even; require
		// every node to own at least half its fair share.
		if c < n/(2*len(nodes)) {
			t.Fatalf("node %s owns only %d/%d keys: %v", node, c, n, counts)
		}
	}
}

func TestOwnerStableUnderUnrelatedMembership(t *testing.T) {
	// Consistent hashing: adding a node must only move keys TO the new
	// node, never shuffle ownership between survivors.
	old := New([]string{"http://a:1", "http://b:2"})
	grown := New([]string{"http://a:1", "http://b:2", "http://c:3"})
	moved, total := 0, 2000
	for i := 0; i < total; i++ {
		key := fmt.Sprintf("d%d", i)
		before, after := old.Owner(key), grown.Owner(key)
		if before != after {
			moved++
			if after != "http://c:3" {
				t.Fatalf("key %q moved between surviving nodes: %q -> %q", key, before, after)
			}
		}
	}
	if moved == 0 || moved == total {
		t.Fatalf("implausible move count %d/%d after adding a node", moved, total)
	}
}

func TestEmptyAndSingleRing(t *testing.T) {
	if got := (&HashRing{}).Owner("d1"); got != "" {
		t.Fatalf("empty ring Owner = %q, want empty", got)
	}
	if got := New(nil).Owner("d1"); got != "" {
		t.Fatalf("New(nil) Owner = %q, want empty", got)
	}
	solo := New([]string{"http://only:1"})
	for i := 0; i < 50; i++ {
		if got := solo.Owner(fmt.Sprintf("d%d", i)); got != "http://only:1" {
			t.Fatalf("single-node ring Owner = %q", got)
		}
	}
}

func TestNodesSortedDeduplicated(t *testing.T) {
	r := New([]string{"http://b:2", "http://a:1", "http://b:2"})
	nodes := r.Nodes()
	if len(nodes) != 2 || nodes[0] != "http://a:1" || nodes[1] != "http://b:2" {
		t.Fatalf("Nodes() = %v", nodes)
	}
	// Mutating the returned slice must not corrupt the ring.
	nodes[0] = "mutated"
	if r.Nodes()[0] != "http://a:1" {
		t.Fatalf("Nodes() aliases internal state")
	}
}
