package cluster

import (
	"reflect"
	"sync"
	"testing"
)

func TestVersionedApplyMonotone(t *testing.T) {
	v := NewVersioned([]string{"b", "a"})
	if got := v.Epoch(); got != 1 {
		t.Fatalf("fresh epoch = %d, want 1", got)
	}
	if got := v.Nodes(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Nodes = %v, want sorted [a b]", got)
	}
	if v.Apply(Topology{Epoch: 1, Nodes: []string{"x"}}) {
		t.Fatal("equal epoch applied; Apply must be strictly monotone")
	}
	if !v.Apply(Topology{Epoch: 5, Nodes: []string{"a", "b", "c"}}) {
		t.Fatal("higher epoch rejected")
	}
	if v.Apply(Topology{Epoch: 3, Nodes: []string{"a"}}) {
		t.Fatal("stale epoch applied after a newer one")
	}
	if got := v.Current(); got.Epoch != 5 || !reflect.DeepEqual(got.Nodes, []string{"a", "b", "c"}) {
		t.Fatalf("Current = %+v, want epoch 5 over [a b c]", got)
	}
}

func TestVersionedAddRemove(t *testing.T) {
	v := NewVersioned([]string{"a"})
	topo, err := v.Add("b")
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if topo.Epoch != 2 || !reflect.DeepEqual(topo.Nodes, []string{"a", "b"}) {
		t.Fatalf("Add returned %+v", topo)
	}
	if _, err := v.Add("b"); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if _, err := v.Add(""); err == nil {
		t.Fatal("empty Add succeeded")
	}
	if _, err := v.Remove("zzz"); err == nil {
		t.Fatal("Remove of non-member succeeded")
	}
	topo, err = v.Remove("a")
	if err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if topo.Epoch != 3 || !reflect.DeepEqual(topo.Nodes, []string{"b"}) {
		t.Fatalf("Remove returned %+v", topo)
	}
	if _, err := v.Remove("b"); err == nil {
		t.Fatal("removing the last member succeeded")
	}
}

// Ownership through a Versioned ring must match a static ring over the
// same membership — the dynamic layer only swaps rings, it must not
// perturb placement.
func TestVersionedOwnerMatchesStatic(t *testing.T) {
	nodes := []string{"http://n1", "http://n2", "http://n3"}
	v := NewVersioned(nodes)
	static := New(nodes)
	keys := []string{"d0-1", "d1-7", "d2-42", "session", ""}
	for _, k := range keys {
		if got, want := v.Owner(k), static.Owner(k); got != want {
			t.Fatalf("Owner(%q) = %q, want %q", k, got, want)
		}
	}
}

func TestVersionedConcurrent(t *testing.T) {
	v := NewVersioned([]string{"a"})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v.Owner("k")
				v.Add("b")
				v.Remove("b")
			}
		}()
	}
	wg.Wait()
	if got := v.Nodes(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("after churn Nodes = %v, want [a]", got)
	}
	// 8 goroutines * 100 iterations, each successful Add/Remove pair
	// bumps the epoch twice; the final epoch just has to be consistent
	// and non-zero.
	if v.Epoch() < 2 {
		t.Fatalf("epoch %d after churn", v.Epoch())
	}
}
