// Dynamic membership: a Topology is a versioned member list, and a
// Versioned ring atomically swaps consistent-hash rings as topologies
// with higher epochs arrive. Replicas converge without coordination
// because application is monotone — a topology is installed only if
// its epoch is strictly greater than the current one, so the same set
// of propagation messages applied in any order and any number of times
// yields the same final ring on every node.
package cluster

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Topology is one versioned cluster membership. Epochs are minted by
// whichever node serves an admin join/leave request: it increments its
// current epoch and pushes the result to every peer (old and new).
// Ties cannot conflict in practice because admin operations are rare
// and human-driven; if two nodes do mint the same epoch concurrently,
// the first application wins on each replica and the operator re-issues
// (the admin response carries the epoch so this is visible).
type Topology struct {
	Epoch uint64   `json:"epoch"`
	Nodes []string `json:"nodes"`
}

// Versioned is a Ring whose membership can change at runtime. Reads
// (Owner, Nodes, Epoch) are lock-free pointer loads; writes rebuild the
// underlying HashRing and CAS it in.
//
// The zero value is unusable; build one with NewVersioned.
type Versioned struct {
	cur atomic.Pointer[versionedState]
}

type versionedState struct {
	topo Topology
	ring *HashRing
}

// NewVersioned builds a dynamic ring at epoch 1 over nodes (deduped,
// sorted, empties dropped — same normalization as New).
func NewVersioned(nodes []string) *Versioned {
	v := &Versioned{}
	ring := New(nodes)
	v.cur.Store(&versionedState{topo: Topology{Epoch: 1, Nodes: ring.Nodes()}, ring: ring})
	return v
}

// Current returns the installed topology. The Nodes slice is shared;
// callers must not mutate it.
func (v *Versioned) Current() Topology { return v.cur.Load().topo }

// Epoch returns the installed topology's epoch.
func (v *Versioned) Epoch() uint64 { return v.cur.Load().topo.Epoch }

// Owner implements Ring against the installed topology.
func (v *Versioned) Owner(key string) string { return v.cur.Load().ring.Owner(key) }

// Nodes implements Ring against the installed topology.
func (v *Versioned) Nodes() []string { return v.cur.Load().ring.Nodes() }

// Apply installs t if and only if its epoch is strictly greater than
// the current one, reporting whether it was installed. Stale and
// duplicate topologies are ignored, which makes propagation idempotent:
// peers can forward topologies to each other freely and every replica
// converges on the highest epoch it has seen.
func (v *Versioned) Apply(t Topology) bool {
	ring := New(t.Nodes)
	t.Nodes = ring.Nodes()
	for {
		cur := v.cur.Load()
		if t.Epoch <= cur.topo.Epoch {
			return false
		}
		if v.cur.CompareAndSwap(cur, &versionedState{topo: t, ring: ring}) {
			return true
		}
	}
}

// Add mints the next epoch with node joined, installs it, and returns
// the new topology. It fails (ok=false) if node is empty or already a
// member.
func (v *Versioned) Add(node string) (Topology, error) {
	if node == "" {
		return Topology{}, fmt.Errorf("cluster: cannot add empty node")
	}
	for {
		cur := v.cur.Load()
		if i := sort.SearchStrings(cur.topo.Nodes, node); i < len(cur.topo.Nodes) && cur.topo.Nodes[i] == node {
			return Topology{}, fmt.Errorf("cluster: node %s is already a member (epoch %d)", node, cur.topo.Epoch)
		}
		next := Topology{Epoch: cur.topo.Epoch + 1, Nodes: append(append([]string(nil), cur.topo.Nodes...), node)}
		ring := New(next.Nodes)
		next.Nodes = ring.Nodes()
		if v.cur.CompareAndSwap(cur, &versionedState{topo: next, ring: ring}) {
			return next, nil
		}
	}
}

// Remove mints the next epoch with node gone, installs it, and returns
// the new topology. Removing the last member or a non-member fails.
func (v *Versioned) Remove(node string) (Topology, error) {
	for {
		cur := v.cur.Load()
		i := sort.SearchStrings(cur.topo.Nodes, node)
		if i >= len(cur.topo.Nodes) || cur.topo.Nodes[i] != node {
			return Topology{}, fmt.Errorf("cluster: node %s is not a member (epoch %d)", node, cur.topo.Epoch)
		}
		if len(cur.topo.Nodes) == 1 {
			return Topology{}, fmt.Errorf("cluster: refusing to remove the last member %s", node)
		}
		nodes := make([]string, 0, len(cur.topo.Nodes)-1)
		nodes = append(nodes, cur.topo.Nodes[:i]...)
		nodes = append(nodes, cur.topo.Nodes[i+1:]...)
		next := Topology{Epoch: cur.topo.Epoch + 1, Nodes: nodes}
		ring := New(next.Nodes)
		if v.cur.CompareAndSwap(cur, &versionedState{topo: next, ring: ring}) {
			return next, nil
		}
	}
}
