package shape

import (
	"testing"

	"github.com/querycause/querycause/internal/rel"
)

func TestFromQuery(t *testing.T) {
	// q :- R(x,'a3'), S(y,x), S is exogenous.
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.C("a3")),
		rel.NewAtom("S", rel.V("y"), rel.V("x")),
	)
	s := FromQuery(q, func(r string) bool { return r == "R" })
	if len(s.Atoms) != 2 {
		t.Fatalf("atoms = %v", s.Atoms)
	}
	if len(s.Atoms[0].Vars) != 1 || s.Atoms[0].Vars[0] != 0 || !s.Atoms[0].Endo {
		t.Errorf("R atom = %+v, want vars [0] endo", s.Atoms[0])
	}
	if len(s.Atoms[1].Vars) != 2 || s.Atoms[1].Endo {
		t.Errorf("S atom = %+v, want vars [0 1] exo", s.Atoms[1])
	}
	if s.VarNames[0] != "x" || s.VarNames[1] != "y" {
		t.Errorf("VarNames = %v", s.VarNames)
	}
}

func TestFromQueryRepeatedVar(t *testing.T) {
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.V("x")))
	s := FromQuery(q, func(string) bool { return true })
	if len(s.Atoms[0].Vars) != 1 {
		t.Fatalf("R(x,x) shape vars = %v, want deduped", s.Atoms[0].Vars)
	}
}

func TestKeyNormalizesAtomOrder(t *testing.T) {
	s1 := New(A("R", true, 0, 1), A("S", false, 1, 2))
	s2 := New(A("S2", false, 1, 2), A("R2", true, 0, 1))
	if s1.Key() != s2.Key() {
		t.Errorf("keys differ: %q vs %q", s1.Key(), s2.Key())
	}
	s3 := New(A("R", false, 0, 1), A("S", false, 1, 2))
	if s1.Key() == s3.Key() {
		t.Error("keys should differ on endo flags")
	}
}

func TestLinearityOfHardQueries(t *testing.T) {
	for _, h := range []HardQuery{H1, H2, H3} {
		if NewHard(h).IsLinear() {
			t.Errorf("%s must not be linear", h)
		}
	}
}

func TestMatchHardSelf(t *testing.T) {
	for _, h := range []HardQuery{H1, H2, H3} {
		got, ok := NewHard(h).MatchHard()
		if !ok || got != h {
			t.Errorf("NewHard(%s).MatchHard() = %v,%v", h, got, ok)
		}
	}
}

func TestMatchHardAnyFlagAtoms(t *testing.T) {
	// Theorem 4.1: W in h1 and R,S,T in h3 may be exogenous.
	h1 := New(A("A", true, 0), A("B", true, 1), A("C", true, 2), A("W", false, 0, 1, 2))
	if _, ok := h1.MatchHard(); !ok {
		t.Error("h1 with exogenous W must match")
	}
	h3 := New(A("A", true, 0), A("B", true, 1), A("C", true, 2),
		A("R", false, 0, 1), A("S", true, 1, 2), A("T", false, 2, 0))
	if got, ok := h3.MatchHard(); !ok || got != H3 {
		t.Errorf("h3 with mixed flags: got %v,%v", got, ok)
	}
	// But the unary atoms must be endogenous.
	bad := New(A("A", false, 0), A("B", true, 1), A("C", true, 2), A("W", true, 0, 1, 2))
	if _, ok := bad.MatchHard(); ok {
		t.Error("h1 with exogenous A must not match")
	}
	// h2 with an exogenous edge is not h2 (that query is PTIME, Ex. 4.12).
	badH2 := New(A("R", true, 0, 1), A("S", false, 1, 2), A("T", true, 2, 0))
	if _, ok := badH2.MatchHard(); ok {
		t.Error("h2 with exogenous S must not match")
	}
}

func TestMatchHardUnderRenaming(t *testing.T) {
	// h2 with scrambled variable ids.
	s := New(A("P", true, 7, 3), A("Q", true, 3, 9), A("Z", true, 9, 7))
	if got, ok := s.MatchHard(); !ok || got != H2 {
		t.Errorf("renamed h2: got %v,%v", got, ok)
	}
}

func TestMatchHardRejectsNear(t *testing.T) {
	// A path of three binary atoms (not a triangle) must not match h2.
	s := New(A("R", true, 0, 1), A("S", true, 1, 2), A("T", true, 2, 3))
	if _, ok := s.MatchHard(); ok {
		t.Error("path must not match")
	}
	// Four variables.
	s2 := New(A("A", true, 0), A("B", true, 1), A("C", true, 2), A("W", true, 0, 1, 3))
	if _, ok := s2.MatchHard(); ok {
		t.Error("wrong ternary atom must not match")
	}
}

func TestMatchSelfJoinHard(t *testing.T) {
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x")),
		rel.NewAtom("S", rel.V("x"), rel.V("y")),
		rel.NewAtom("R", rel.V("y")),
	)
	s := FromQuery(q, func(r string) bool { return r == "R" })
	if !s.MatchSelfJoinHard() {
		t.Error("Prop 4.16 pattern must match (S exogenous)")
	}
	s2 := FromQuery(q, func(r string) bool { return true })
	if !s2.MatchSelfJoinHard() {
		t.Error("Prop 4.16 pattern must match (S endogenous)")
	}
	// Different relation names on the unaries: not the pattern.
	q3 := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x")),
		rel.NewAtom("S", rel.V("x"), rel.V("y")),
		rel.NewAtom("T", rel.V("y")),
	)
	if FromQuery(q3, func(string) bool { return true }).MatchSelfJoinHard() {
		t.Error("distinct unaries must not match Prop 4.16")
	}
}

func TestWeakeningsDomination(t *testing.T) {
	// Rⁿ(x,y), Vⁿ(x): V dominates R.
	s := New(A("R", true, 0, 1), A("V", true, 0))
	var got []AppliedOp
	for _, ap := range s.Weakenings() {
		if ap.Op.Kind == Domination {
			got = append(got, ap)
		}
	}
	if len(got) != 1 || got[0].Op.Atom != 0 {
		t.Fatalf("dominations = %+v, want atom 0 only", got)
	}
	if got[0].Result.Atoms[0].Endo {
		t.Error("dominated atom should be exogenous in result")
	}
	// Equal variable sets dominate each other: two candidate ops.
	s2 := New(A("R", true, 0, 1), A("P", true, 0, 1))
	doms := 0
	for _, ap := range s2.Weakenings() {
		if ap.Op.Kind == Domination {
			doms++
		}
	}
	if doms != 2 {
		t.Errorf("equal varsets: %d dominations, want 2", doms)
	}
}

func TestWeakeningsDissociation(t *testing.T) {
	// Rⁿ(x,y), Sˣ(y,z), Tⁿ(z,x): S can absorb x from either neighbor.
	s := New(A("R", true, 0, 1), A("S", false, 1, 2), A("T", true, 2, 0))
	var diss []AppliedOp
	for _, ap := range s.Weakenings() {
		if ap.Op.Kind == Dissociation {
			diss = append(diss, ap)
		}
	}
	if len(diss) != 1 || diss[0].Op.Atom != 1 || diss[0].Op.Var != 0 {
		t.Fatalf("dissociations = %+v, want S absorbing x", diss)
	}
	r := diss[0].Result
	if len(r.Atoms[1].Vars) != 3 {
		t.Errorf("S vars after dissociation = %v", r.Atoms[1].Vars)
	}
}

func TestDissociationRequiresNeighbor(t *testing.T) {
	// Sˣ(y) with disconnected Rⁿ(x): no dissociation possible.
	s := New(A("S", false, 1), A("R", true, 0))
	for _, ap := range s.Weakenings() {
		if ap.Op.Kind == Dissociation {
			t.Fatalf("unexpected dissociation %+v", ap.Op)
		}
	}
}

func TestRewritesDeleteVar(t *testing.T) {
	s := New(A("R", true, 0, 1), A("S", true, 1))
	var del []AppliedOp
	for _, ap := range s.Rewrites() {
		if ap.Op.Kind == DeleteVar {
			del = append(del, ap)
		}
	}
	if len(del) != 2 {
		t.Fatalf("delete-var ops = %d, want 2", len(del))
	}
	for _, ap := range del {
		if ap.Op.Var == 1 {
			if len(ap.Result.Atoms[1].Vars) != 0 {
				t.Errorf("S should be empty after deleting y: %v", ap.Result.Atoms[1])
			}
		}
	}
}

func TestRewritesAddVar(t *testing.T) {
	// R(x,y), S(y,z): can add x to atoms containing y (pivot y), etc.
	s := New(A("R", true, 0, 1), A("S", true, 1, 2))
	found := false
	for _, ap := range s.Rewrites() {
		if ap.Op.Kind == AddVar && ap.Op.Pivot == 1 && ap.Op.Var == 0 {
			found = true
			if !ap.Result.Atoms[1].HasVar(0) {
				t.Error("S should contain x after ADD")
			}
		}
		if ap.Op.Kind == AddVar && ap.Op.Pivot == 0 && ap.Op.Var == 2 {
			t.Error("x,z do not co-occur; ADD z via pivot x is illegal")
		}
	}
	if !found {
		t.Error("missing ADD x to atoms containing y")
	}
}

func TestRewritesDeleteAtom(t *testing.T) {
	// W exogenous: deletable. Rⁿ(x,y) with Vⁿ(x): R deletable (dominated).
	s := New(A("R", true, 0, 1), A("V", true, 0), A("W", false, 0, 1))
	dels := map[int]bool{}
	for _, ap := range s.Rewrites() {
		if ap.Op.Kind == DeleteAtom {
			dels[ap.Op.Atom] = true
			if len(ap.Result.Atoms) != 2 {
				t.Errorf("delete-atom result has %d atoms", len(ap.Result.Atoms))
			}
		}
	}
	if !dels[0] || !dels[2] {
		t.Errorf("deletable atoms = %v, want {0, 2}", dels)
	}
	if dels[1] {
		// V is endogenous; it is deletable only if some other atom's
		// variable set is contained in {x}. R's is not; W's is not.
		t.Error("V must not be deletable")
	}
}

func TestApplyWeakeningValidation(t *testing.T) {
	s := New(A("R", true, 0, 1), A("V", true, 0))
	if _, err := s.ApplyWeakening(Op{Kind: Domination, Atom: 1}); err == nil {
		t.Error("V is not dominated; expected error")
	}
	ns, err := s.ApplyWeakening(Op{Kind: Domination, Atom: 0})
	if err != nil {
		t.Fatal(err)
	}
	if ns.Atoms[0].Endo {
		t.Error("atom 0 should be exogenous")
	}
	if _, err := s.ApplyWeakening(Op{Kind: DeleteVar, Var: 0}); err == nil {
		t.Error("DeleteVar is not a weakening")
	}
	if _, err := ns.ApplyWeakening(Op{Kind: Dissociation, Atom: 0, Var: 5}); err == nil {
		t.Error("variable 5 is in no neighbor")
	}
}

func TestStringRendering(t *testing.T) {
	s := NewHard(H2)
	got := s.String()
	want := "R^n(x,y), S^n(y,z), T^n(x,z)" // variable sets are sorted
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestUsedVarsAndSelfJoin(t *testing.T) {
	s := New(A("R", true, 0, 2), A("R", true, 2))
	uv := s.UsedVars()
	if len(uv) != 2 || uv[0] != 0 || uv[1] != 2 {
		t.Errorf("UsedVars = %v", uv)
	}
	if !s.HasSelfJoin() {
		t.Error("self-join expected")
	}
}
