package shape

import (
	"fmt"
	"sort"
)

// Op is a single weakening or rewriting step, recorded for certificates.
type Op struct {
	Kind OpKind
	// Atom is the index of the affected atom (Domination, Dissociation,
	// DeleteAtom).
	Atom int
	// Var is the deleted variable (DeleteVar), the added variable
	// (Dissociation), or the variable y in ADD y (AddVar).
	Var int
	// Pivot is the variable x in ADD y (AddVar): y is added to every atom
	// containing x.
	Pivot int
}

// OpKind enumerates weakening and rewriting steps.
type OpKind int

const (
	// Domination (Definition 4.9): an endogenous atom whose variable set
	// contains another endogenous atom's variable set becomes exogenous.
	Domination OpKind = iota
	// Dissociation (Definition 4.9): an exogenous atom absorbs a variable
	// occurring in one of its neighbors.
	Dissociation
	// DeleteVar (Definition 4.6, DELETE x): a variable is removed from
	// all atoms.
	DeleteVar
	// AddVar (Definition 4.6, ADD y): variable y is added to all atoms
	// containing x, provided some atom contains both.
	AddVar
	// DeleteAtom (Definition 4.6, DELETE g): an exogenous or dominated
	// atom is removed.
	DeleteAtom
)

func (k OpKind) String() string {
	switch k {
	case Domination:
		return "domination"
	case Dissociation:
		return "dissociation"
	case DeleteVar:
		return "delete-var"
	case AddVar:
		return "add-var"
	case DeleteAtom:
		return "delete-atom"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Describe renders the op against the shape it was applied to.
func (o Op) Describe(s *Shape) string {
	switch o.Kind {
	case Domination:
		return fmt.Sprintf("domination: make %s exogenous", s.Atoms[o.Atom].Rel)
	case Dissociation:
		return fmt.Sprintf("dissociation: add %s to %s", s.varName(o.Var), s.Atoms[o.Atom].Rel)
	case DeleteVar:
		return fmt.Sprintf("delete variable %s", s.varName(o.Var))
	case AddVar:
		return fmt.Sprintf("add %s to all atoms containing %s", s.varName(o.Var), s.varName(o.Pivot))
	case DeleteAtom:
		return fmt.Sprintf("delete atom %s", s.Atoms[o.Atom].Rel)
	}
	return o.Kind.String()
}

// neighbors reports whether atoms i and j share a variable.
func (s *Shape) neighbors(i, j int) bool {
	for _, v := range s.Atoms[i].Vars {
		if s.Atoms[j].HasVar(v) {
			return true
		}
	}
	return false
}

// DominationRule selects which domination side condition weakenings use.
type DominationRule int

const (
	// PaperDomination is Definition 4.9 verbatim: an endogenous atom g is
	// dominated if some other endogenous atom g0 has Var(g0) ⊆ Var(g).
	//
	// This rule is NOT always responsibility-preserving: for
	// q :- Rⁿ(x,y), Sⁿ(y,z), Tⁿ(z,x), Vⁿ(x) (the paper's Example 4.12)
	// there are instances where a minimum contingency must use an
	// R-tuple, because the only dominator V covers x but not y, so an
	// R(a,b) with a equal to the protected conjunct's x-value cannot be
	// swapped for V(a). See the counterexample test in internal/core.
	PaperDomination DominationRule = iota
	// SoundDomination additionally requires every variable of the
	// dominated atom to be covered by some endogenous dominator: then any
	// contingency tuple g(ā) outside the protected conjunct P differs
	// from P on some variable v ∈ Var(g), and the dominator containing v
	// yields a projection tuple outside P that covers at least the same
	// valuations — so minimum contingencies never need dominated tuples
	// and the weakening preserves responsibility. A zero-variable
	// endogenous atom is always soundly dominated: its single possible
	// tuple lies in every conjunct, hence never in any contingency.
	SoundDomination
)

// dominated reports whether atom i may be made exogenous under the rule.
func (s *Shape) dominated(i int, rule DominationRule) bool {
	g := s.Atoms[i]
	if !g.Endo {
		return false
	}
	switch rule {
	case PaperDomination:
		for j, g0 := range s.Atoms {
			if i != j && g0.Endo && g0.subsetOf(g) {
				return true
			}
		}
		return false
	case SoundDomination:
		if len(g.Vars) == 0 {
			// Sound only if the atom genuinely cannot carry contingency
			// tuples; a zero-variable atom has one possible tuple, in
			// every conjunct.
			return true
		}
		for _, v := range g.Vars {
			covered := false
			for j, g0 := range s.Atoms {
				if i != j && g0.Endo && g0.HasVar(v) && g0.subsetOf(g) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	return false
}

// Weakenings enumerates all single-step weakenings q ⇒ q′ under the
// paper's Definition 4.9 (PaperDomination).
func (s *Shape) Weakenings() []AppliedOp { return s.WeakeningsUnder(PaperDomination) }

// WeakeningsUnder enumerates single-step weakenings under the given
// domination rule. Dissociation (which never alters the lineage, only
// the hypergraph) is common to both rules.
func (s *Shape) WeakeningsUnder(rule DominationRule) []AppliedOp {
	var out []AppliedOp
	// Domination.
	for i := range s.Atoms {
		if s.dominated(i, rule) {
			ns := s.Clone()
			ns.Atoms[i].Endo = false
			out = append(out, AppliedOp{Op: Op{Kind: Domination, Atom: i}, Result: ns})
		}
	}
	// Dissociation.
	for i, g := range s.Atoms {
		if g.Endo {
			continue
		}
		candidate := make(map[int]bool)
		for j := range s.Atoms {
			if i == j || !s.neighbors(i, j) {
				continue
			}
			for _, v := range s.Atoms[j].Vars {
				if !g.HasVar(v) {
					candidate[v] = true
				}
			}
		}
		vars := make([]int, 0, len(candidate))
		for v := range candidate {
			vars = append(vars, v)
		}
		sort.Ints(vars)
		for _, v := range vars {
			ns := s.Clone()
			ns.Atoms[i].Vars = insertSorted(ns.Atoms[i].Vars, v)
			out = append(out, AppliedOp{Op: Op{Kind: Dissociation, Atom: i, Var: v}, Result: ns})
		}
	}
	return out
}

// Rewrites enumerates all single-step rewritings q ⇝ q′ (Definition
// 4.6).
func (s *Shape) Rewrites() []AppliedOp {
	var out []AppliedOp
	used := s.UsedVars()
	// DELETE x.
	for _, v := range used {
		ns := s.Clone()
		for i := range ns.Atoms {
			ns.Atoms[i].Vars = removeSorted(ns.Atoms[i].Vars, v)
		}
		out = append(out, AppliedOp{Op: Op{Kind: DeleteVar, Var: v}, Result: ns})
	}
	// ADD y: for each ordered pair (x,y) co-occurring in some atom.
	for _, x := range used {
		for _, y := range used {
			if x == y {
				continue
			}
			cooccur := false
			for _, a := range s.Atoms {
				if a.HasVar(x) && a.HasVar(y) {
					cooccur = true
					break
				}
			}
			if !cooccur {
				continue
			}
			ns := s.Clone()
			changed := false
			for i := range ns.Atoms {
				if ns.Atoms[i].HasVar(x) && !ns.Atoms[i].HasVar(y) {
					ns.Atoms[i].Vars = insertSorted(ns.Atoms[i].Vars, y)
					changed = true
				}
			}
			if changed {
				out = append(out, AppliedOp{Op: Op{Kind: AddVar, Var: y, Pivot: x}, Result: ns})
			}
		}
	}
	// DELETE g: g exogenous, or some other atom's variables ⊆ Var(g).
	for i, g := range s.Atoms {
		deletable := !g.Endo
		if !deletable {
			for j, g0 := range s.Atoms {
				if i != j && g0.subsetOf(g) {
					deletable = true
					break
				}
			}
		}
		if !deletable {
			continue
		}
		ns := s.Clone()
		ns.Atoms = append(append([]Atom(nil), ns.Atoms[:i]...), ns.Atoms[i+1:]...)
		out = append(out, AppliedOp{Op: Op{Kind: DeleteAtom, Atom: i}, Result: ns})
	}
	return out
}

// ApplyWeakening applies a recorded weakening op under the paper's
// domination rule. See ApplyWeakeningUnder.
func (s *Shape) ApplyWeakening(o Op) (*Shape, error) {
	return s.ApplyWeakeningUnder(o, PaperDomination)
}

// ApplyWeakeningUnder applies a recorded weakening op (used to replay
// certificates). It validates the op's side conditions under the given
// domination rule.
func (s *Shape) ApplyWeakeningUnder(o Op, rule DominationRule) (*Shape, error) {
	switch o.Kind {
	case Domination:
		if o.Atom < 0 || o.Atom >= len(s.Atoms) || !s.Atoms[o.Atom].Endo {
			return nil, fmt.Errorf("shape: invalid domination of atom %d", o.Atom)
		}
		if !s.dominated(o.Atom, rule) {
			return nil, fmt.Errorf("shape: atom %d is not dominated under rule %d", o.Atom, int(rule))
		}
		ns := s.Clone()
		ns.Atoms[o.Atom].Endo = false
		return ns, nil
	case Dissociation:
		if o.Atom < 0 || o.Atom >= len(s.Atoms) || s.Atoms[o.Atom].Endo {
			return nil, fmt.Errorf("shape: invalid dissociation of atom %d", o.Atom)
		}
		ok := false
		for j := range s.Atoms {
			if j != o.Atom && s.neighbors(o.Atom, j) && s.Atoms[j].HasVar(o.Var) {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("shape: variable %d not in a neighbor of atom %d", o.Var, o.Atom)
		}
		ns := s.Clone()
		ns.Atoms[o.Atom].Vars = insertSorted(ns.Atoms[o.Atom].Vars, o.Var)
		return ns, nil
	default:
		return nil, fmt.Errorf("shape: %s is not a weakening op", o.Kind)
	}
}

// AppliedOp pairs a successor shape with the op that produced it.
type AppliedOp struct {
	Op     Op
	Result *Shape
}

func insertSorted(vs []int, v int) []int {
	i := sort.SearchInts(vs, v)
	if i < len(vs) && vs[i] == v {
		return vs
	}
	vs = append(vs, 0)
	copy(vs[i+1:], vs[i:])
	vs[i] = v
	return vs
}

func removeSorted(vs []int, v int) []int {
	i := sort.SearchInts(vs, v)
	if i >= len(vs) || vs[i] != v {
		return vs
	}
	return append(vs[:i], vs[i+1:]...)
}
