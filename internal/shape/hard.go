package shape

import "sort"

// HardQuery names one of the canonical NP-hard queries of Theorem 4.1.
type HardQuery string

const (
	// H1 is h₁* :- Aⁿ(x), Bⁿ(y), Cⁿ(z), W(x,y,z).
	H1 HardQuery = "h1"
	// H2 is h₂* :- Rⁿ(x,y), Sⁿ(y,z), Tⁿ(z,x).
	H2 HardQuery = "h2"
	// H3 is h₃* :- Aⁿ(x), Bⁿ(y), Cⁿ(z), R(x,y), S(y,z), T(z,x).
	H3 HardQuery = "h3"
)

// hardPattern describes an atom of a canonical hard query over variables
// 0,1,2. anyFlag atoms are hard whether endogenous or exogenous
// (Theorem 4.1).
type hardPattern struct {
	vars    []int
	anyFlag bool // if false the atom must be endogenous
}

var hardPatterns = map[HardQuery][]hardPattern{
	H1: {
		{vars: []int{0}}, {vars: []int{1}}, {vars: []int{2}},
		{vars: []int{0, 1, 2}, anyFlag: true},
	},
	H2: {
		{vars: []int{0, 1}}, {vars: []int{1, 2}}, {vars: []int{0, 2}},
	},
	H3: {
		{vars: []int{0}}, {vars: []int{1}}, {vars: []int{2}},
		{vars: []int{0, 1}, anyFlag: true}, {vars: []int{1, 2}, anyFlag: true}, {vars: []int{0, 2}, anyFlag: true},
	},
}

// MatchHard reports whether the shape is isomorphic (by variable
// renaming; relation names are immaterial) to one of the canonical hard
// queries of Theorem 4.1.
func (s *Shape) MatchHard() (HardQuery, bool) {
	for _, h := range []HardQuery{H1, H2, H3} {
		if s.matches(hardPatterns[h]) {
			return h, true
		}
	}
	return "", false
}

// matches checks isomorphism against a pattern over exactly 3 variables.
func (s *Shape) matches(pattern []hardPattern) bool {
	if len(s.Atoms) != len(pattern) {
		return false
	}
	used := s.UsedVars()
	if len(used) != 3 {
		return false
	}
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		ren := map[int]int{used[0]: p[0], used[1]: p[1], used[2]: p[2]}
		if s.matchesUnder(pattern, ren) {
			return true
		}
	}
	return false
}

// matchesUnder checks whether the renamed atoms match the pattern as a
// multiset (backtracking assignment).
func (s *Shape) matchesUnder(pattern []hardPattern, ren map[int]int) bool {
	taken := make([]bool, len(pattern))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(s.Atoms) {
			return true
		}
		a := s.Atoms[i]
		rv := make([]int, len(a.Vars))
		for k, v := range a.Vars {
			rv[k] = ren[v]
		}
		sort.Ints(rv)
		for j, pat := range pattern {
			if taken[j] || len(rv) != len(pat.vars) {
				continue
			}
			if !pat.anyFlag && !a.Endo {
				continue
			}
			eq := true
			for k := range rv {
				if rv[k] != pat.vars[k] {
					eq = false
					break
				}
			}
			if !eq {
				continue
			}
			taken[j] = true
			if rec(i + 1) {
				return true
			}
			taken[j] = false
		}
		return false
	}
	return rec(0)
}

// MatchSelfJoinHard reports whether the shape matches the self-join
// query of Proposition 4.16, Rⁿ(x), S(x,y), Rⁿ(y) (S endogenous or
// exogenous), for which responsibility is NP-hard.
func (s *Shape) MatchSelfJoinHard() bool {
	if len(s.Atoms) != 3 {
		return false
	}
	used := s.UsedVars()
	if len(used) != 2 {
		return false
	}
	var unary []Atom
	var binary []Atom
	for _, a := range s.Atoms {
		switch len(a.Vars) {
		case 1:
			unary = append(unary, a)
		case 2:
			binary = append(binary, a)
		default:
			return false
		}
	}
	if len(unary) != 2 || len(binary) != 1 {
		return false
	}
	if unary[0].Rel != unary[1].Rel || !unary[0].Endo || !unary[1].Endo {
		return false
	}
	if unary[0].Vars[0] == unary[1].Vars[0] {
		return false
	}
	return binary[0].Vars[0] == used[0] && binary[0].Vars[1] == used[1]
}

// NewHard returns a fresh copy of the named canonical hard query with
// conventional relation names and variables x,y,z. For H1 and H3 the
// unspecified-flag atoms are created endogenous.
func NewHard(h HardQuery) *Shape {
	var s *Shape
	switch h {
	case H1:
		s = New(A("A", true, 0), A("B", true, 1), A("C", true, 2), A("W", true, 0, 1, 2))
	case H2:
		s = New(A("R", true, 0, 1), A("S", true, 1, 2), A("T", true, 2, 0))
	case H3:
		s = New(A("A", true, 0), A("B", true, 1), A("C", true, 2),
			A("R", true, 0, 1), A("S", true, 1, 2), A("T", true, 2, 0))
	default:
		return nil
	}
	s.VarNames = []string{"x", "y", "z"}
	return s
}
