// Package shape represents conjunctive queries abstractly for the
// complexity analysis of Section 4 of Meliou et al. (VLDB 2010): an atom
// is its set of variables plus an endogenous/exogenous flag; constants
// are dropped (they do not contribute hyperedges to the dual hypergraph
// of Definition 4.3 and only make instances easier).
//
// Shapes support the linearity test (Definition 4.4), the weakening
// relation ⇒ (Definition 4.9), the rewriting relation ⇝ (Definition
// 4.6), and isomorphism matching against the canonical hard queries h₁*,
// h₂*, h₃* of Theorem 4.1. Variable identities are stable across
// weakening and rewriting (neither introduces fresh variables), so
// search states are keyed without graph canonicalization.
package shape

import (
	"fmt"
	"sort"
	"strings"

	"github.com/querycause/querycause/internal/hypergraph"
	"github.com/querycause/querycause/internal/rel"
)

// Atom is one subgoal: a relation name, its variable set (sorted ints),
// and its endogenous flag.
type Atom struct {
	Rel  string
	Vars []int
	Endo bool
}

// HasVar reports whether v is in the atom's variable set.
func (a Atom) HasVar(v int) bool {
	i := sort.SearchInts(a.Vars, v)
	return i < len(a.Vars) && a.Vars[i] == v
}

// subsetOf reports Vars(a) ⊆ Vars(b).
func (a Atom) subsetOf(b Atom) bool {
	j := 0
	for _, v := range a.Vars {
		for j < len(b.Vars) && b.Vars[j] < v {
			j++
		}
		if j == len(b.Vars) || b.Vars[j] != v {
			return false
		}
		j++
	}
	return true
}

// Shape is an abstract conjunctive query.
type Shape struct {
	Atoms []Atom
	// VarNames maps variable ids to display names. Ids not listed render
	// as v<i>.
	VarNames []string
}

// A constructs an atom for literal shape definitions, e.g.
// shape.A("R", true, 0, 1).
func A(relName string, endo bool, vars ...int) Atom {
	vs := append([]int(nil), vars...)
	sort.Ints(vs)
	vs = dedupInts(vs)
	return Atom{Rel: relName, Vars: vs, Endo: endo}
}

// New builds a shape from atoms.
func New(atoms ...Atom) *Shape {
	return &Shape{Atoms: atoms}
}

func dedupInts(vs []int) []int {
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || vs[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// FromQuery abstracts a Boolean conjunctive query: variables are numbered
// by first occurrence, constants are dropped, and each atom's flag is
// looked up by relation name via endo.
func FromQuery(q *rel.Query, endo func(relName string) bool) *Shape {
	ids := make(map[string]int)
	var names []string
	s := &Shape{}
	for _, at := range q.Atoms {
		var vs []int
		for _, t := range at.Terms {
			if !t.IsVar {
				continue
			}
			id, ok := ids[t.Var]
			if !ok {
				id = len(names)
				ids[t.Var] = id
				names = append(names, t.Var)
			}
			vs = append(vs, id)
		}
		sort.Ints(vs)
		s.Atoms = append(s.Atoms, Atom{Rel: at.Pred, Vars: dedupInts(vs), Endo: endo(at.Pred)})
	}
	s.VarNames = names
	return s
}

// Clone deep-copies the shape.
func (s *Shape) Clone() *Shape {
	out := &Shape{Atoms: make([]Atom, len(s.Atoms)), VarNames: s.VarNames}
	for i, a := range s.Atoms {
		out.Atoms[i] = Atom{Rel: a.Rel, Vars: append([]int(nil), a.Vars...), Endo: a.Endo}
	}
	return out
}

// UsedVars returns the sorted set of variables occurring in some atom.
func (s *Shape) UsedVars() []int {
	seen := make(map[int]bool)
	for _, a := range s.Atoms {
		for _, v := range a.Vars {
			seen[v] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// HasSelfJoin reports whether two atoms share a relation name.
func (s *Shape) HasSelfJoin() bool {
	seen := make(map[string]bool)
	for _, a := range s.Atoms {
		if seen[a.Rel] {
			return true
		}
		seen[a.Rel] = true
	}
	return false
}

// Key returns a canonical string for search-state deduplication. Atom
// order is normalized; variable ids and relation names are preserved
// (weakening and rewriting never rename variables). Relation names are
// excluded: for the self-join-free analysis atoms are interchangeable up
// to their variable sets and flags.
func (s *Shape) Key() string {
	parts := make([]string, len(s.Atoms))
	for i, a := range s.Atoms {
		var b strings.Builder
		if a.Endo {
			b.WriteString("n:")
		} else {
			b.WriteString("x:")
		}
		for _, v := range a.Vars {
			fmt.Fprintf(&b, "%d,", v)
		}
		parts[i] = b.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// varName renders a variable id for display.
func (s *Shape) varName(v int) string {
	if v < len(s.VarNames) && s.VarNames[v] != "" {
		return s.VarNames[v]
	}
	return fmt.Sprintf("v%d", v)
}

// String renders the shape as, e.g., "Rⁿ(x,y), Sˣ(y,z)".
func (s *Shape) String() string {
	parts := make([]string, len(s.Atoms))
	for i, a := range s.Atoms {
		vs := make([]string, len(a.Vars))
		for j, v := range a.Vars {
			vs[j] = s.varName(v)
		}
		tag := "x"
		if a.Endo {
			tag = "n"
		}
		parts[i] = fmt.Sprintf("%s^%s(%s)", a.Rel, tag, strings.Join(vs, ","))
	}
	return strings.Join(parts, ", ")
}

// Dual builds the dual query hypergraph H_D (Definition 4.3): vertices
// are atoms, one hyperedge per used variable.
func (s *Shape) Dual() *hypergraph.Hypergraph {
	h := hypergraph.New(len(s.Atoms))
	for _, v := range s.UsedVars() {
		var members []int
		for i, a := range s.Atoms {
			if a.HasVar(v) {
				members = append(members, i)
			}
		}
		// Vertices are in range by construction; error is impossible.
		_ = h.AddEdge(fmt.Sprintf("%d", v), members)
	}
	return h
}

// Connected reports whether the shape's atoms form one connected
// component under shared variables. The dichotomy machinery of Theorem
// 4.13 implicitly assumes connected queries: a disconnected endogenous
// atom can be neither deleted (Definition 4.6) nor dominated, leaving
// queries outside both closures (see the gap tests in internal/rewrite).
func (s *Shape) Connected() bool {
	return len(s.Dual().Components()) <= 1
}

// LinearOrder returns an atom order witnessing linearity (Definition
// 4.4), or nil/false if the shape is not linear.
func (s *Shape) LinearOrder() ([]int, bool) {
	return s.Dual().LinearOrder()
}

// IsLinear reports whether the shape is linear.
func (s *Shape) IsLinear() bool {
	_, ok := s.LinearOrder()
	return ok
}
