// Benchmarks behind BENCH_api.json: what the Session API redesign
// buys in wall-clock terms. E20 measures streaming's
// time-to-first-explanation against the full blocking ranking on an
// NP-hard instance (h₁* star — one exact branch-and-bound search per
// cause, so the blocking call pays for all searches before returning
// anything). E21 measures the per-explain overhead of the HTTP
// transport: the identical Session calls through Open vs a Dial'ed
// httptest server, warm engine cache on both sides.
package querycause_test

import (
	"context"
	"net/http/httptest"
	"testing"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/server"
	"github.com/querycause/querycause/internal/workload"
)

// benchStarRanking opens a Ranking over an NP-hard star instance.
func benchStarRanking(b *testing.B, sess qc.Session, q *qc.Query) qc.Ranking {
	b.Helper()
	r, err := sess.WhySo(context.Background(), q)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkE20_StreamTTFE: full-rank is the blocking Rank over every
// cause of the star; first-explanation breaks out of RankStream after
// the first yield. The gap between the two is the streaming win: the
// first explanation costs one exact search instead of all of them.
func BenchmarkE20_StreamTTFE(b *testing.B) {
	db, q, _ := workload.Star(7, 12)
	sess, err := qc.Open(db)
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()

	b.Run("full-rank", func(b *testing.B) {
		r := benchStarRanking(b, sess, q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Rank(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("first-explanation", func(b *testing.B) {
		r := benchStarRanking(b, sess, q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got := 0
			for _, serr := range r.RankStream(context.Background()) {
				if serr != nil {
					b.Fatal(serr)
				}
				got++
				break
			}
			if got != 1 {
				b.Fatal("stream yielded nothing")
			}
		}
	})
}

// BenchmarkE21_TransportOverhead: one warm why-so explain (open the
// ranking, rank it) through each transport on the Fig. 2 IMDB
// micro-instance. The difference is pure API overhead — JSON, HTTP,
// rehydration — since the server's engine cache is warm.
func BenchmarkE21_TransportOverhead(b *testing.B) {
	db, _ := imdb.Micro()
	q := imdb.GenreQuery()

	run := func(b *testing.B, sess qc.Session) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			r, err := sess.WhySo(context.Background(), q, "Musical")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := r.Rank(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("local", func(b *testing.B) {
		sess, err := qc.Open(db)
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		run(b, sess)
	})
	b.Run("remote", func(b *testing.B) {
		srv := server.New(server.Config{ReapInterval: -1})
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			srv.Close()
		}()
		sess, err := qc.Dial(context.Background(), ts.URL, db)
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		run(b, sess)
	})
	b.Run("remote-stream", func(b *testing.B) {
		srv := server.New(server.Config{ReapInterval: -1})
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			srv.Close()
		}()
		sess, err := qc.Dial(context.Background(), ts.URL, db)
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		for i := 0; i < b.N; i++ {
			r, err := sess.WhySo(context.Background(), q, "Musical")
			if err != nil {
				b.Fatal(err)
			}
			for _, serr := range r.RankStream(context.Background()) {
				if serr != nil {
					b.Fatal(serr)
				}
			}
		}
	})
}
