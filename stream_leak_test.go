package querycause_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/server"
)

// starDB builds a database where the answer "a" has 2n causes, enough
// that abandoning a parallel RankStream mid-flight leaves workers with
// real work still queued.
func starDB(n int) *qc.Database {
	db := qc.NewDatabase()
	for i := 0; i < n; i++ {
		b := qc.Value(fmt.Sprintf("b%02d", i))
		db.MustAdd("R", true, "a", b)
		db.MustAdd("S", true, b)
	}
	return db
}

// waitForGoroutines polls until the live goroutine count drops back to
// the baseline (plus slack for runtime background goroutines), failing
// with a full goroutine dump if it never does.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Idle keep-alive connections park two goroutines per conn on the
		// shared default transport; they are pooled, not leaked.
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	var buf strings.Builder
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatalf("goroutine profile: %v", err)
	}
	t.Fatalf("goroutines leaked: %d live, baseline %d\n%s",
		runtime.NumGoroutine(), base, buf.String())
}

// TestStreamAbandonmentLeaksNoGoroutines: breaking out of RankStream
// mid-flight and abandoning Watch after its snapshot must release every
// worker, closer, and transport goroutine — on the local engine and
// through the HTTP client alike. The count is taken after everything is
// closed and must return to the pre-test baseline.
func TestStreamAbandonmentLeaksNoGoroutines(t *testing.T) {
	q, err := qc.ParseQuery("q(x) :- R(x,y), S(y)")
	if err != nil {
		t.Fatal(err)
	}
	abandon := func(t *testing.T, sess qc.Session) {
		ctx := context.Background()
		// Several rounds amplify any per-stream leak above the slack.
		for round := 0; round < 3; round++ {
			r, err := sess.WhySo(ctx, q, "a")
			if err != nil {
				t.Fatal(err)
			}
			yielded := 0
			for _, serr := range r.RankStream(ctx, qc.WithParallelism(4)) {
				if serr != nil {
					t.Fatal(serr)
				}
				yielded++
				break // abandon with workers still in flight
			}
			if yielded != 1 {
				t.Fatalf("round %d: yielded %d explanations before break, want 1", round, yielded)
			}
		}
		// Abandon a watch right after its snapshot frame.
		wctx, cancel := context.WithCancel(ctx)
		defer cancel()
		for ev, werr := range sess.Watch(wctx, qc.WatchSpec{Query: q, Answer: []qc.Value{"a"}}) {
			if werr != nil {
				t.Fatal(werr)
			}
			if ev.Type != "snapshot" {
				t.Fatalf("first watch frame type = %q, want snapshot", ev.Type)
			}
			break
		}
	}

	t.Run("local", func(t *testing.T) {
		base := runtime.NumGoroutine()
		sess, err := qc.Open(starDB(8))
		if err != nil {
			t.Fatal(err)
		}
		abandon(t, sess)
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		waitForGoroutines(t, base)
	})
	t.Run("remote", func(t *testing.T) {
		base := runtime.NumGoroutine()
		srv := server.New(server.Config{ReapInterval: -1})
		ts := httptest.NewServer(srv.Handler())
		sess, err := qc.Dial(context.Background(), ts.URL, starDB(8))
		if err != nil {
			t.Fatal(err)
		}
		abandon(t, sess)
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		ts.Close()
		srv.Close()
		waitForGoroutines(t, base)
	})
}
