package querycause_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/imdb"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// TestFormatExplanationsGolden pins the Fig. 2b table rendering to a
// golden file: the IMDB micro-instance's Musical ranking, the exact
// table the paper prints.
func TestFormatExplanationsGolden(t *testing.T) {
	db, _ := imdb.Micro()
	ex, err := qc.WhySo(db, imdb.GenreQuery(), "Musical")
	if err != nil {
		t.Fatal(err)
	}
	got := qc.FormatExplanations(db, ex.MustRank())

	golden := filepath.Join("testdata", "format_explanations.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to record)", err)
	}
	if got != string(want) {
		t.Errorf("FormatExplanations output changed\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestFormatExplanationsLarge checks the builder-based renderer on a
// ranking large enough that quadratic string concatenation would have
// been visible, and that the header row survives an empty ranking.
func TestFormatExplanationsLarge(t *testing.T) {
	db := qc.NewDatabase()
	var exps []qc.Explanation
	for i := 0; i < 2000; i++ {
		id := db.MustAdd("R", true, qc.Value(strings.Repeat("x", 1+i%7)))
		exps = append(exps, qc.Explanation{Tuple: id, Rho: 0.25, ContingencySize: 3})
	}
	out := qc.FormatExplanations(db, exps)
	if got := strings.Count(out, "\n"); got != len(exps)+1 {
		t.Errorf("rendered %d lines; want %d rows + header", got, len(exps)+1)
	}
	if empty := qc.FormatExplanations(db, nil); empty != "  ρ_t    tuple\n" {
		t.Errorf("empty ranking rendered %q", empty)
	}
}
