package querycause_test

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/persist"
	"github.com/querycause/querycause/internal/server"
)

// TestSessionWatchManualResume: WatchSpec.ResumeFrom hands a replayed
// state across Watch calls, identically on both transports. A resume
// the topic's diff buffer covers continues the chain gap-free (the
// first frame is the missed diff, not a snapshot); a resume onto a
// topic dropped by an affected mutation recovers with a full_resync
// that replaces the state wholesale.
func TestSessionWatchManualResume(t *testing.T) {
	q, err := qc.ParseQuery("q(x) :- R(x,y), S(y)")
	if err != nil {
		t.Fatal(err)
	}
	mkDB := func() *qc.Database {
		db := mutateChainDB()
		db.MustAdd("T", true, "t1") // unrelated relation for empty-diff frames
		return db
	}
	bothTransportsFresh(t, mkDB, func(t *testing.T, sess qc.Session) {
		ctx := context.Background()
		spec := qc.WatchSpec{Query: q, Answer: []qc.Value{"a4"}}

		var state []qc.ExplanationDTO
		var version uint64
		for ev, err := range sess.Watch(ctx, spec) {
			if err != nil {
				t.Fatalf("first watch: %v", err)
			}
			if ev.Type != "snapshot" {
				t.Fatalf("first frame type %q, want snapshot", ev.Type)
			}
			state, version = qc.ApplyDiff(state, ev), ev.Version
			break // disconnect
		}

		// Missed while away: an unrelated insert. The retained topic
		// records the empty version-bump, so the resume replays it —
		// a diff frame, not a snapshot.
		if _, err := sess.Insert(ctx, qc.TupleSpec{Rel: "T", Args: []string{"t2"}, Endo: true}); err != nil {
			t.Fatal(err)
		}
		spec.ResumeFrom = version
		for ev, err := range sess.Watch(ctx, spec) {
			if err != nil {
				t.Fatalf("resumed watch: %v", err)
			}
			if ev.Type != "diff" || ev.Version <= version ||
				len(ev.CausesAdded)+len(ev.CausesRemoved)+len(ev.RankChanged) != 0 {
				t.Fatalf("resumed frame = %s; want empty diff past version %d", mustJSON(t, ev), version)
			}
			state, version = qc.ApplyDiff(state, ev), ev.Version
			break
		}

		// Missed while away: an insert affecting the watched query. With
		// no subscriber listening the topic is dropped rather than
		// re-ranked inside the mutation, so this resume pays a
		// full_resync — whose ranking must byte-equal a cold rank.
		if _, err := sess.Insert(ctx, qc.TupleSpec{Rel: "R", Args: []string{"a4", "a2"}, Endo: true}); err != nil {
			t.Fatal(err)
		}
		spec.ResumeFrom = version
		for ev, err := range sess.Watch(ctx, spec) {
			if err != nil {
				t.Fatalf("second resume: %v", err)
			}
			if ev.Type != "full_resync" || ev.Version <= version {
				t.Fatalf("second resume frame = %s; want full_resync past version %d", mustJSON(t, ev), version)
			}
			state = qc.ApplyDiff(state, ev)
			break
		}
		// A fresh subscription's snapshot is the cold ranking in DTO form;
		// the resumed fold must byte-equal it.
		for ev, err := range sess.Watch(ctx, qc.WatchSpec{Query: q, Answer: []qc.Value{"a4"}}) {
			if err != nil {
				t.Fatalf("verification watch: %v", err)
			}
			if got, want := mustJSON(t, state), mustJSON(t, qc.ApplyDiff(nil, ev)); got != want {
				t.Fatalf("resumed state diverges from cold snapshot:\n got %s\nwant %s", got, want)
			}
			break
		}
	})
}

// TestWatchStreamResumeOlderThanBuffer: a WatchStream resume from a
// version the server's diff buffer no longer covers starts with a
// full_resync frame that replaces the folded state — the client never
// sees a broken diff chain.
func TestWatchStreamResumeOlderThanBuffer(t *testing.T) {
	srv := server.New(server.Config{ReapInterval: -1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	c := qc.NewClient(ts.URL, nil)
	ctx := context.Background()
	info, err := c.UploadDB(ctx, mutateChainDB())
	if err != nil {
		t.Fatal(err)
	}

	// Outrun the per-topic replay buffer (64 frames) so version 1 is
	// unrecoverable as a chain.
	for i := 0; i < 70; i++ {
		if _, err := c.InsertTuples(ctx, info.ID, []qc.TupleSpec{{Rel: "S", Args: []string{"zz"}, Endo: true}}); err != nil {
			t.Fatal(err)
		}
	}
	for ev, err := range c.WatchStream(ctx, info.ID, qc.WatchRequest{
		Query: "q(x) :- R(x,y), S(y)", Answer: []string{"a4"}, ResumeFrom: 1,
	}) {
		if err != nil {
			t.Fatalf("watch: %v", err)
		}
		if ev.Type != "full_resync" {
			t.Fatalf("stale resume's first frame = %q, want full_resync", ev.Type)
		}
		break
	}
}

// TestWatchStreamSurvivesOwnerDeath is the end-to-end survivability
// contract: a live watch whose owning node is killed reconnects
// through a fallback base, resumes once the dead node is removed from
// the ring and a survivor restores the session from the shared store,
// and its folded state converges to the cold ranking — the stream
// never surfaces an error until the consumer cancels it.
func TestWatchStreamSurvivesOwnerDeath(t *testing.T) {
	restore := qc.SetRetryBackoffBase(5 * time.Millisecond)
	defer restore()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Three nodes over one shared persist dir (only a session's owner
	// writes its snapshot, so the stores do not fight).
	const n = 3
	dir := t.TempDir()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	srvs := make([]*server.Server, n)
	hss := make([]*http.Server, n)
	for i := range lns {
		st, err := persist.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = server.New(server.Config{
			ReapInterval: -1, Self: urls[i], Peers: urls,
			Persist: st, PersistInterval: 50 * time.Millisecond,
		})
		hss[i] = &http.Server{Handler: srvs[i].Handler()}
		go hss[i].Serve(lns[i])
		i := i
		t.Cleanup(func() {
			hss[i].Close()
			srvs[i].Close()
		})
	}

	admin := qc.NewClient(urls[1], nil).SetFallbacks([]string{urls[2]}).SetRetries(8)
	mint := qc.NewClient(urls[0], nil) // session is minted onto node 0
	info, err := mint.UploadDB(ctx, mutateChainDB())
	if err != nil {
		t.Fatal(err)
	}
	const q = "q(x) :- R(x,y), S(y)"

	// The watcher folds frames under a lock; the main goroutine polls.
	var (
		mu      sync.Mutex
		state   []qc.ExplanationDTO
		version uint64
		watchWG sync.WaitGroup
		lastErr error
	)
	watcher := qc.NewClient(urls[0], nil).SetFallbacks([]string{urls[1], urls[2]})
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		for ev, err := range watcher.WatchStream(ctx, info.ID, qc.WatchRequest{Query: q, Answer: []string{"a4"}}) {
			if err != nil {
				lastErr = err
				return
			}
			mu.Lock()
			state = qc.ApplyDiff(state, ev)
			version = ev.Version
			mu.Unlock()
		}
	}()
	versionReached := func(v uint64) func() bool {
		return func() bool {
			mu.Lock()
			defer mu.Unlock()
			return version >= v
		}
	}
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	// A live frame before the kill proves the stream is up.
	ins, err := mint.InsertTuples(ctx, info.ID, []qc.TupleSpec{{Rel: "R", Args: []string{"a4", "a2"}, Endo: true}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(versionReached(ins.Version), "pre-kill frame")

	// Kill the owner mid-stream — flush first so the survivors can
	// restore the session's current state from the shared store — then
	// shrink the ring so a survivor takes ownership.
	if err := srvs[0].Flush(); err != nil {
		t.Fatal(err)
	}
	hss[0].Close()
	srvs[0].Close()
	if _, err := admin.RemoveNode(ctx, urls[0]); err != nil {
		t.Fatalf("removing dead node: %v", err)
	}

	// A mutation routed through a survivor lands on the new owner (it
	// lazily restores the session) and must reach the resumed watch.
	ins, err = admin.InsertTuples(ctx, info.ID, []qc.TupleSpec{{Rel: "S", Args: []string{"w9"}, Endo: true}})
	if err != nil {
		t.Fatalf("post-kill insert: %v", err)
	}
	waitFor(versionReached(ins.Version), "post-kill frame on the resumed stream")

	// The folded state matches a cold rank from the new owner,
	// whichever recovery path (replay or full_resync) the resume took.
	cold, err := admin.WhySo(ctx, info.ID, "", qc.ExplainRequest{Query: q, Answer: []string{"a4"}})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := mustJSON(t, state)
	mu.Unlock()
	if want := mustJSON(t, cold.Explanations); got != want {
		t.Fatalf("folded state after failover:\n got %s\nwant %s", got, want)
	}

	// The stream never died on its own; it ends with the consumer's
	// cancellation.
	cancel()
	watchWG.Wait()
	if !errors.Is(lastErr, context.Canceled) {
		t.Fatalf("watch ended with %v, want context.Canceled", lastErr)
	}
}

// TestWatchStreamReconnectBackoffCancel: a watch stuck in its
// reconnect-backoff loop (every base dead) honors context
// cancellation promptly instead of sleeping out the backoff.
func TestWatchStreamReconnectBackoffCancel(t *testing.T) {
	restore := qc.SetRetryBackoffBase(2 * time.Second) // long sleeps: cancellation must cut them short
	defer restore()

	srv := server.New(server.Config{ReapInterval: -1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := qc.NewClient(url, nil)
	info, err := c.UploadDB(ctx, mutateChainDB())
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		var last error
		for ev, err := range c.WatchStream(ctx, info.ID, qc.WatchRequest{Query: "q(x) :- R(x,y), S(y)", Answer: []string{"a4"}}) {
			if err != nil {
				last = err
				break
			}
			if ev.Type == "snapshot" {
				close(started)
			}
		}
		got <- last
	}()
	<-started
	hs.Close() // no fallbacks: every reconnect fails, backoff grows from 2s
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("watch ended with %v, want context.Canceled", err)
		}
	case <-time.After(1 * time.Second):
		t.Fatal("watch did not stop within 1s of cancellation; backoff sleep ignored the context")
	}
}
